package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeEndpoints boots the live endpoint on an ephemeral port and
// exercises every route: the index, the metrics dump, expvar, and the ring
// sink's recent-events stream.
func TestServeEndpoints(t *testing.T) {
	Default().Counter("http_test_counter").Inc()
	ring := NewRingSink(4)
	ring.Emit(&CacheEvent{Kind: EvHit, Seq: 42, Addr: 64})

	bound, shutdown, err := Serve("127.0.0.1:0", ring)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	if bound == "" {
		t.Fatal("no bound address")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + bound + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if idx := get("/"); !strings.Contains(idx, "/metrics") || !strings.Contains(idx, "/events") {
		t.Errorf("index page incomplete:\n%s", idx)
	}
	if m := get("/metrics"); !strings.Contains(m, "http_test_counter 1") {
		t.Errorf("/metrics missing the registered counter:\n%s", m)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	} else if _, ok := vars["obs"]; !ok {
		t.Error("/debug/vars does not publish the obs registry")
	}
	evs, err := ReadEvents(strings.NewReader(get("/events")))
	if err != nil {
		t.Fatalf("/events: %v", err)
	}
	if len(evs) != 1 || evs[0].Seq != 42 {
		t.Errorf("/events = %+v, want the one ring event", evs)
	}
}

// TestShutdownDrainsInFlight is the regression test for shutdown aborting
// live responses: a request that is mid-body when shutdown is called must
// still complete. Before serveOn drained via srv.Shutdown, the shutdown
// function called srv.Close, which severed the connection and the client
// saw a truncated body / transport error.
func TestShutdownDrainsInFlight(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "part1-")
		w.(http.Flusher).Flush()
		close(inHandler)
		<-release // hold the response open across the shutdown call
		io.WriteString(w, "part2")
	})

	bound, shutdown, err := serveOn("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	type reply struct {
		body string
		err  error
	}
	got := make(chan reply, 1)
	go func() {
		resp, err := http.Get("http://" + bound + "/slow")
		if err != nil {
			got <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- reply{body: string(body), err: err}
	}()

	<-inHandler
	done := make(chan struct{})
	go func() { shutdown(); close(done) }()
	time.Sleep(20 * time.Millisecond) // let Shutdown start draining
	close(release)

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", r.err)
	}
	if r.body != "part1-part2" {
		t.Fatalf("in-flight body truncated across shutdown: %q", r.body)
	}
	select {
	case <-done:
	case <-time.After(2 * shutdownGrace):
		t.Fatal("shutdown did not return")
	}
}

// TestServeDisabled pins the no-flag path: empty address means no listener
// and a callable shutdown.
func TestServeDisabled(t *testing.T) {
	bound, shutdown, err := Serve("", nil)
	if err != nil || bound != "" {
		t.Fatalf("bound=%q err=%v, want no-op", bound, err)
	}
	shutdown()
}

// TestProgress checks the rate limiter: a nil Progress (disabled) never
// logs, and an enabled one emits at most one line per interval.
func TestProgress(t *testing.T) {
	var p *Progress = NewProgress(0)
	if p != nil {
		t.Fatal("interval 0 must disable progress")
	}
	p.Tick("never") // nil-safe

	var buf bytes.Buffer
	old := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(&buf, nil)))
	defer slog.SetDefault(old)

	p = NewProgress(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	p.Tick("line one", "step", 1)
	p.Tick("line two", "step", 2) // same interval: suppressed
	out := buf.String()
	if !strings.Contains(out, "line one") {
		t.Errorf("first tick after the interval must log, got:\n%s", out)
	}
	if strings.Contains(out, "line two") {
		t.Errorf("second tick within the interval must be suppressed, got:\n%s", out)
	}
}
