package obs

import (
	"fmt"
	"testing"

	"repro/internal/xrand"
)

// TestNilTopKIsNoOp pins the disabled mode.
func TestNilTopKIsNoOp(t *testing.T) {
	var tk *TopK
	tk.Offer("a")
	tk.OfferN("b", 10)
	if tk.Snapshot() != nil {
		t.Fatal("nil sketch must snapshot nil")
	}
}

// TestTopKExactUnderCapacity: with fewer distinct keys than k, counts are
// exact with zero error.
func TestTopKExactUnderCapacity(t *testing.T) {
	tk := NewTopK(8)
	for i := 0; i < 3; i++ {
		for j := 0; j <= i; j++ {
			tk.Offer(fmt.Sprintf("k%d", i))
		}
	}
	snap := tk.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len = %d, want 3", len(snap))
	}
	want := []TopKEntry{{Key: "k2", Count: 3}, {Key: "k1", Count: 2}, {Key: "k0", Count: 1}}
	for i, w := range want {
		if snap[i] != w {
			t.Errorf("snap[%d] = %+v, want %+v", i, snap[i], w)
		}
	}
}

// TestTopKHeavyHitters: on a skewed stream with many more distinct keys
// than slots, every true heavy hitter (freq > N/k) survives and its count
// is an overestimate bounded by Err — the Space-Saving guarantees.
func TestTopKHeavyHitters(t *testing.T) {
	const k = 16
	tk := NewTopK(k)
	truth := map[string]uint64{}
	rng := xrand.New(42)
	var n uint64
	offer := func(key string) {
		tk.Offer(key)
		truth[key]++
		n++
	}
	// 4 heavy keys at ~1000 each over ~6000 light singletons.
	for i := 0; i < 1000; i++ {
		for h := 0; h < 4; h++ {
			offer(fmt.Sprintf("heavy%d", h))
		}
		for l := 0; l < 6; l++ {
			offer(fmt.Sprintf("light%d", rng.Uint64()%100000))
		}
	}
	snap := tk.Snapshot()
	if len(snap) != k {
		t.Fatalf("len = %d, want %d", len(snap), k)
	}
	got := map[string]TopKEntry{}
	for _, e := range snap {
		got[e.Key] = e
	}
	for h := 0; h < 4; h++ {
		key := fmt.Sprintf("heavy%d", h)
		e, ok := got[key]
		if !ok {
			t.Fatalf("heavy hitter %s evicted from sketch", key)
		}
		if e.Count < truth[key] {
			t.Errorf("%s: count %d underestimates true %d", key, e.Count, truth[key])
		}
		if e.Count-e.Err > truth[key] {
			t.Errorf("%s: count-err %d exceeds true %d — error bound broken", key, e.Count-e.Err, truth[key])
		}
	}
	// Global Space-Saving invariant: every count is an overestimate.
	for _, e := range snap {
		if e.Count < truth[e.Key] {
			t.Errorf("%s: count %d < true %d", e.Key, e.Count, truth[e.Key])
		}
	}
}

// TestMergeTopK folds two shard sketches and checks counts add and the
// top-k cut is by merged count with deterministic tie-breaks.
func TestMergeTopK(t *testing.T) {
	a := NewTopK(4)
	b := NewTopK(4)
	a.OfferN("x", 10)
	a.OfferN("y", 5)
	b.OfferN("x", 7)
	b.OfferN("z", 6)
	merged := MergeTopK(2, a.Snapshot(), b.Snapshot())
	if len(merged) != 2 {
		t.Fatalf("len = %d, want 2", len(merged))
	}
	if merged[0].Key != "x" || merged[0].Count != 17 {
		t.Errorf("merged[0] = %+v, want x:17", merged[0])
	}
	if merged[1].Key != "z" || merged[1].Count != 6 {
		t.Errorf("merged[1] = %+v, want z:6", merged[1])
	}
	// Determinism on ties.
	m2 := MergeTopK(0, []TopKEntry{{Key: "b", Count: 3}, {Key: "a", Count: 3}})
	if m2[0].Key != "a" || m2[1].Key != "b" {
		t.Errorf("tie-break not by key: %+v", m2)
	}
}
