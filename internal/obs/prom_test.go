package obs

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestWritePrometheusShape checks the exposition format: HELP/TYPE per
// family, labeled series under one family, cumulative histogram buckets
// with a +Inf terminator, and integer-only values (no NaN possible).
func TestWritePrometheusShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("srv_gets").Add(7)
	r.Counter(`srv_evictions{policy="lru"}`).Add(3)
	r.Counter(`srv_evictions{policy="drrip"}`).Add(4)
	r.Gauge("srv_bytes").Set(1024)
	h := r.Histogram("srv_latency_ns")
	h.Observe(5)   // bucket le=7
	h.Observe(100) // bucket le=127
	h.Observe(100)
	RegisterHelp("srv_gets", "total GET requests")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	wants := []string{
		"# HELP srv_gets total GET requests",
		"# TYPE srv_gets counter",
		"srv_gets 7",
		"# TYPE srv_evictions counter",
		`srv_evictions{policy="drrip"} 4`,
		`srv_evictions{policy="lru"} 3`,
		"# TYPE srv_bytes gauge",
		"srv_bytes 1024",
		"# TYPE srv_latency_ns histogram",
		`srv_latency_ns_bucket{le="7"} 1`,
		`srv_latency_ns_bucket{le="127"} 3`,
		`srv_latency_ns_bucket{le="+Inf"} 3`,
		"srv_latency_ns_sum 205",
		"srv_latency_ns_count 3",
	}
	for _, w := range wants {
		if !strings.Contains(out, w+"\n") {
			t.Errorf("missing line %q in:\n%s", w, out)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf ") {
		t.Error("non-finite value in exposition")
	}
	// Every family gets exactly one TYPE line, HELP precedes TYPE.
	if strings.Count(out, "# TYPE srv_evictions ") != 1 {
		t.Error("labeled series must share one TYPE line")
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	lastHelp := ""
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# HELP ") {
			lastHelp = strings.Fields(line)[2]
		}
		if strings.HasPrefix(line, "# TYPE ") {
			if fam := strings.Fields(line)[2]; fam != lastHelp {
				t.Errorf("TYPE %s not preceded by its HELP", fam)
			}
		}
	}
}

// TestPromHistogramCumulative pins that bucket samples are monotonically
// nondecreasing in le order and end at the total count.
func TestPromHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for v := uint64(1); v < 1000; v *= 3 {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var last uint64
	var inf uint64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "lat_bucket{") {
			continue
		}
		val, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if val < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = val
		if strings.Contains(line, `le="+Inf"`) {
			inf = val
		}
	}
	if inf != h.Count() {
		t.Errorf("+Inf bucket %d != count %d", inf, h.Count())
	}
}
