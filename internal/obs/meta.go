package obs

import (
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
)

// BuildInfo identifies where and with what a run happened, so emitted
// artifacts (BENCH_*.json, run manifests) stay attributable when they are
// compared across machines and commits.
type BuildInfo struct {
	GitSHA     string `json:"git_sha,omitempty"`
	GitDirty   bool   `json:"git_dirty,omitempty"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Hostname   string `json:"hostname,omitempty"`
}

// CollectBuildInfo gathers the environment best-effort: missing pieces
// (no git binary, no /proc/cpuinfo) yield empty fields, never errors.
func CollectBuildInfo() BuildInfo {
	bi := BuildInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
	if hn, err := os.Hostname(); err == nil {
		bi.Hostname = hn
	}
	bi.GitSHA, bi.GitDirty = gitRevision()
	return bi
}

// gitRevision prefers the VCS stamp Go embeds in `go build` binaries and
// falls back to asking git directly (the stamp is absent under `go run`
// and `go test`).
func gitRevision() (sha string, dirty bool) {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				sha = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if sha != "" {
			return sha, dirty
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "", false
	}
	sha = strings.TrimSpace(string(out))
	st, err := exec.Command("git", "status", "--porcelain").Output()
	if err == nil && len(strings.TrimSpace(string(st))) > 0 {
		dirty = true
	}
	return sha, dirty
}

// cpuModel reads the CPU model name from /proc/cpuinfo (Linux; empty
// elsewhere).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}
