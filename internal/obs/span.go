package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SpanOp classifies a request span.
type SpanOp uint8

// Span operations.
const (
	SpanGet SpanOp = iota
	SpanPut
	SpanDelete
	numSpanOps
)

var spanOpNames = [numSpanOps]string{"get", "put", "delete"}

// String returns the wire name.
func (o SpanOp) String() string {
	if int(o) < len(spanOpNames) {
		return spanOpNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// MarshalJSON encodes the op as its string name.
func (o SpanOp) MarshalJSON() ([]byte, error) {
	if int(o) >= len(spanOpNames) {
		return nil, fmt.Errorf("obs: unknown span op %d", uint8(o))
	}
	return []byte(`"` + spanOpNames[o] + `"`), nil
}

// UnmarshalJSON decodes an op name written by MarshalJSON.
func (o *SpanOp) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("obs: span op must be a JSON string, got %s", b)
	}
	name := string(b[1 : len(b)-1])
	for i, n := range spanOpNames {
		if n == name {
			*o = SpanOp(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown span op %q", name)
}

// SpanPhase indexes the timed phases inside a request span.
type SpanPhase uint8

// Span phases: the decomposition of one cache-server request. Separating
// the policy's victim scan from lock contention and blob I/O is what lets
// a strict per-eviction inference budget (Cold-RL's requirement) be
// checked on a live workload rather than estimated offline.
const (
	PhaseLockWait SpanPhase = iota // waiting on the shard mutex
	PhaseVictim                    // policy victim scan (incl. budget-sweep scans)
	PhaseStore                     // content-store I/O (blob get/put)
	NumSpanPhases
)

// Span is one sampled per-request record on the span stream. Phase fields
// are nanosecond totals; whatever the phases don't cover (hashing, tag
// probe, HTTP plumbing) is TotalNs minus their sum. Flat and std-only like
// CacheEvent so sinks and external decoders round-trip it via
// encoding/json.
type Span struct {
	Op          SpanOp `json:"op"`
	Key         string `json:"key,omitempty"`
	Shard       int    `json:"shard"`
	Seq         uint64 `json:"seq"` // sampled-span sequence number
	StartUnixNs int64  `json:"start_unix_ns"`
	TotalNs     int64  `json:"total_ns"`
	LockWaitNs  int64  `json:"lock_wait_ns"`
	VictimNs    int64  `json:"victim_ns"`
	StoreNs     int64  `json:"store_ns"`
	Hit         bool   `json:"hit,omitempty"`
	Outcome     string `json:"outcome,omitempty"` // hit|miss|stored|updated|bypassed|deleted|absent
}

// addPhase accumulates ns into the phase's field.
func (s *Span) addPhase(p SpanPhase, ns int64) {
	switch p {
	case PhaseLockWait:
		s.LockWaitNs += ns
	case PhaseVictim:
		s.VictimNs += ns
	case PhaseStore:
		s.StoreNs += ns
	}
}

// PhaseNs returns the accumulated time of one phase.
func (s *Span) PhaseNs(p SpanPhase) int64 {
	switch p {
	case PhaseLockWait:
		return s.LockWaitNs
	case PhaseVictim:
		return s.VictimNs
	case PhaseStore:
		return s.StoreNs
	}
	return 0
}

// SpanSink consumes request spans, mirroring Sink for cache events. The
// JSONL and discard sinks are shared between the two streams; the ring is
// span-typed.
type SpanSink interface {
	EmitSpan(s *Span) error
	Close() error
}

// EmitSpan writes one span line, sharing the JSONL sink's writer with any
// cache events it also carries.
func (s *JSONLSink) EmitSpan(sp *Span) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(sp)
}

// EmitSpan drops sp.
func (DiscardSink) EmitSpan(*Span) error { return nil }

// RingSpanSink keeps the most recent N spans in memory for live
// introspection (/spans), the span analogue of RingSink.
type RingSpanSink struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

// NewRingSpanSink holds the last n spans (n >= 1).
func NewRingSpanSink(n int) *RingSpanSink {
	if n < 1 {
		n = 1
	}
	return &RingSpanSink{buf: make([]Span, 0, n)}
}

// EmitSpan copies sp into the ring.
func (s *RingSpanSink) EmitSpan(sp *Span) error {
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, *sp)
	} else {
		s.buf[s.next] = *sp
		s.next = (s.next + 1) % cap(s.buf)
	}
	s.total++
	s.mu.Unlock()
	return nil
}

// Total returns the number of spans ever emitted (not just retained).
func (s *RingSpanSink) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Snapshot returns the retained spans, oldest first.
func (s *RingSpanSink) Snapshot() []Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Close is a no-op.
func (*RingSpanSink) Close() error { return nil }

// OpenSpanSink builds a span sink from the same spec grammar as OpenSink
// (jsonl:PATH, ring:N, discard, bare PATH, any with an @N sampling
// suffix). When the spec is a ring, the concrete *RingSpanSink is also
// returned so callers can serve its snapshot (/spans).
func OpenSpanSink(spec string) (sink SpanSink, ring *RingSpanSink, sample int, err error) {
	sp, err := parseSinkSpec(spec)
	if err != nil {
		return nil, nil, 0, err
	}
	switch sp.kind {
	case sinkDiscard:
		return DiscardSink{}, nil, sp.sample, nil
	case sinkRing:
		ring = NewRingSpanSink(sp.ringN)
		return ring, ring, sp.sample, nil
	default:
		f, err := os.Create(sp.path)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("obs: span sink: %w", err)
		}
		return NewJSONLSink(f), nil, sp.sample, nil
	}
}

// SpanTracer samples and emits request spans. Start returns nil for
// unsampled requests (a counter stride, like the event sink's @N), and
// every ActiveSpan method is nil-safe, so the instrumented code path is
// branch-free of telemetry decisions: it just calls through. A nil
// *SpanTracer samples nothing — the disabled mode.
type SpanTracer struct {
	sink  SpanSink
	every uint64
	n     atomic.Uint64 // requests seen (sampling stride)
	seq   atomic.Uint64 // spans emitted
	fail  sync.Once
}

// NewSpanTracer wraps sink; sample <= 1 traces every request, sample = N
// traces one request in N.
func NewSpanTracer(sink SpanSink, sample int) *SpanTracer {
	every := uint64(1)
	if sample > 1 {
		every = uint64(sample)
	}
	return &SpanTracer{sink: sink, every: every}
}

// Sampled returns the number of spans emitted so far (0 on nil).
func (t *SpanTracer) Sampled() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Close closes the underlying sink (flushing a JSONL file). Nil-safe.
func (t *SpanTracer) Close() error {
	if t == nil {
		return nil
	}
	return t.sink.Close()
}

// Start begins a span for one request, or returns nil when the request
// falls outside the sampling stride. The caller threads the *ActiveSpan
// through the request path and calls Finish exactly once.
func (t *SpanTracer) Start(op SpanOp) *ActiveSpan {
	if t == nil {
		return nil
	}
	if (t.n.Add(1)-1)%t.every != 0 {
		return nil
	}
	a := &ActiveSpan{t: t, start: time.Now()}
	a.span.Op = op
	a.span.Shard = -1
	a.span.StartUnixNs = a.start.UnixNano()
	return a
}

// ActiveSpan is one in-flight sampled request. All methods are nil-safe
// no-ops, so unsampled requests (nil span) pay one pointer check per call
// site and never read the clock.
type ActiveSpan struct {
	t     *SpanTracer
	span  Span
	start time.Time
	mark  time.Time
}

// SetKey attaches the request key.
func (a *ActiveSpan) SetKey(key string) {
	if a != nil {
		a.span.Key = key
	}
}

// SetShard attaches the owning shard index.
func (a *ActiveSpan) SetShard(i int) {
	if a != nil {
		a.span.Shard = i
	}
}

// Mark sets the phase reference point: the next EndPhase charges the time
// since this call.
func (a *ActiveSpan) Mark() {
	if a != nil {
		a.mark = time.Now()
	}
}

// EndPhase charges the time since the last Mark (or EndPhase) to phase p
// and re-marks, so consecutive phases chain without an explicit Mark.
func (a *ActiveSpan) EndPhase(p SpanPhase) {
	if a == nil {
		return
	}
	now := time.Now()
	a.span.addPhase(p, now.Sub(a.mark).Nanoseconds())
	a.mark = now
}

// Finish stamps the total latency and outcome and emits the span. The
// first sink error is reported to stderr once; later errors are dropped
// (a full disk must not take the server down).
func (a *ActiveSpan) Finish(outcome string, hit bool) {
	if a == nil {
		return
	}
	a.span.TotalNs = time.Since(a.start).Nanoseconds()
	a.span.Outcome = outcome
	a.span.Hit = hit
	a.span.Seq = a.t.seq.Add(1) - 1
	if err := a.t.sink.EmitSpan(&a.span); err != nil {
		a.t.fail.Do(func() {
			fmt.Fprintf(os.Stderr, "obs: span sink failed (further errors suppressed): %v\n", err)
		})
	}
}

// ReadSpans decodes a JSONL span stream (the JSONLSink format), for tests
// and offline analysis.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	dec := json.NewDecoder(r)
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: span %d: %w", len(out), err)
		}
		out = append(out, s)
	}
}
