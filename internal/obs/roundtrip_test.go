package obs

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

// fullEvent exercises every CacheEvent field, including all victim
// features, so a field silently dropped by the JSON tags fails deep-equal.
func fullEvent() CacheEvent {
	return CacheEvent{
		Kind:           EvEvict,
		Seq:            123456,
		PC:             0x400abc,
		Addr:           0xdeadbeef00,
		Type:           2,
		Set:            511,
		Way:            15,
		Policy:         "rlr",
		VictimBlock:    0x37ff,
		VictimDirty:    true,
		VictimAge:      99,
		VictimPreuse:   7,
		VictimHits:     3,
		VictimRecency:  12,
		VictimLastType: 1,
	}
}

// TestCacheEventRoundTrip is the satellite requirement: encode a batch of
// events through the JSONL sink, decode with ReadEvents, deep-equal.
func TestCacheEventRoundTrip(t *testing.T) {
	events := []CacheEvent{
		fullEvent(),
		{Kind: EvHit, Seq: 1, Addr: 64, Type: 0, Set: 3, Way: 2, Policy: "lru"},
		{Kind: EvMiss, Seq: 2, Addr: 128, Set: 4, Way: -1},
		{Kind: EvBypass, Seq: 3, Addr: 192, Set: 5, Way: -1, Policy: "belady-bypass"},
		{Kind: EvDecision, Seq: 4, Addr: 256, Set: 6, Way: 0, Policy: "rlr", VictimBlock: 9},
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for i := range events {
		if err := sink.Emit(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, events)
	}
}

func TestEventKindWireNames(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		b, err := k.MarshalJSON()
		if err != nil {
			t.Fatalf("kind %d: %v", k, err)
		}
		var back EventKind
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatalf("kind %d (%s): %v", k, b, err)
		}
		if back != k {
			t.Errorf("kind %d round-tripped to %d", k, back)
		}
	}
	var k EventKind
	if err := k.UnmarshalJSON([]byte(`"nonsense"`)); err == nil {
		t.Error("unknown kind name must fail")
	}
	if err := k.UnmarshalJSON([]byte(`7`)); err == nil {
		t.Error("numeric kind must fail")
	}
	if _, err := numEventKinds.MarshalJSON(); err == nil {
		t.Error("out-of-range kind must fail to marshal")
	}
}

// TestManifestRoundTrip writes one record of every kind and deep-equals the
// decoded stream, covering the nested BuildInfo pointer and the
// non-omitempty numeric telemetry fields (a 0.0 loss must survive).
func TestManifestRoundTrip(t *testing.T) {
	records := []ManifestRecord{
		{
			Kind: RecRunStart, TimeUnixMS: 1000,
			Fingerprint: "abc123", Workload: "429.mcf", Accesses: 50000, Epochs: 3,
			Meta: &BuildInfo{GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 8, NumCPU: 8},
		},
		{
			Kind: RecEpoch, TimeUnixMS: 2000,
			Epoch: 0, Steps: 50000, Loss: 0, MeanReward: -0.25, Epsilon: 0.1,
			HitRate: 31.5, WeightNorm: 12.75, Decisions: 420, Batches: 17,
		},
		{Kind: RecCheckpointSave, TimeUnixMS: 3000, Path: "ckpt.bin", Epoch: 1},
		{Kind: RecResume, TimeUnixMS: 4000, Path: "ckpt.bin", Steps: 50000},
		{Kind: RecRunEnd, TimeUnixMS: 5000, HitRate: 40.25, WeightNorm: 13.5, Err: "interrupted"},
	}
	var buf bytes.Buffer
	m := NewManifest(&buf)
	for _, rec := range records {
		if err := m.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, records)
	}
}

func TestManifestStampsTime(t *testing.T) {
	var buf bytes.Buffer
	m := NewManifest(&buf)
	m.now = func() time.Time { return time.UnixMilli(777) }
	if err := m.Write(ManifestRecord{Kind: RecRunEnd}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].TimeUnixMS != 777 {
		t.Errorf("records = %+v, want one stamped at 777", recs)
	}
}

// TestNilManifest pins that the disabled manifest path (no -manifest flag)
// is a total no-op rather than a nil dereference.
func TestNilManifest(t *testing.T) {
	m, err := OpenManifest("")
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatal("empty path must yield a nil manifest")
	}
	if err := m.Write(ManifestRecord{Kind: RecEpoch}); err != nil {
		t.Error(err)
	}
	if err := m.Close(); err != nil {
		t.Error(err)
	}
}

func TestReadManifestStrict(t *testing.T) {
	in := strings.NewReader(`{"kind":"run_start"}` + "\n" + `{"kind":` + "\n")
	recs, err := ReadManifest(in)
	if err == nil {
		t.Fatal("malformed line must fail")
	}
	if len(recs) != 1 {
		t.Errorf("got %d records before the error, want 1", len(recs))
	}
	if !strings.Contains(err.Error(), "record 1") {
		t.Errorf("error %q does not name the failing record", err)
	}
}

func TestOpenSinkSpecs(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		spec   string
		sample int
		kind   string
	}{
		{"discard", 1, "obs.DiscardSink"},
		{"discard@100", 100, "obs.DiscardSink"},
		{"ring:16", 1, "*obs.RingSink"},
		{"jsonl:" + filepath.Join(dir, "a.jsonl"), 1, "*obs.JSONLSink"},
		{filepath.Join(dir, "b.jsonl"), 1, "*obs.JSONLSink"},
		{filepath.Join(dir, "c.jsonl") + "@7", 7, "*obs.JSONLSink"},
	}
	for _, c := range cases {
		sink, sample, err := OpenSink(c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if sample != c.sample {
			t.Errorf("%s: sample = %d, want %d", c.spec, sample, c.sample)
		}
		if got := reflect.TypeOf(sink).String(); got != c.kind {
			t.Errorf("%s: sink type %s, want %s", c.spec, got, c.kind)
		}
		sink.Close()
	}
	for _, bad := range []string{"", "ring:zero", "ring:0", "discard@0", "discard@x"} {
		if _, _, err := OpenSink(bad); err == nil {
			t.Errorf("spec %q must fail", bad)
		}
	}
}

func TestRingSink(t *testing.T) {
	r := NewRingSink(3)
	for i := 1; i <= 5; i++ {
		e := CacheEvent{Seq: uint64(i)}
		if err := r.Emit(&e); err != nil {
			t.Fatal(err)
		}
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Seq != 3 || snap[1].Seq != 4 || snap[2].Seq != 5 {
		t.Errorf("snapshot = %+v, want seqs 3,4,5 oldest-first", snap)
	}
}

// countSink counts emissions (for the sampling test).
type countSink struct{ n int }

func (s *countSink) Emit(*CacheEvent) error { s.n++; return nil }
func (s *countSink) Close() error           { return nil }

func TestSinkHookSampling(t *testing.T) {
	s := &countSink{}
	h := NewSinkHook(s, 3)
	e := CacheEvent{}
	for i := 0; i < 10; i++ {
		h.OnCacheEvent(&e)
	}
	if s.n != 4 { // events 0, 3, 6, 9
		t.Errorf("1-in-3 sampling forwarded %d of 10 events, want 4", s.n)
	}
	s2 := &countSink{}
	NewSinkHook(s2, 0).OnCacheEvent(&e)
	if s2.n != 1 {
		t.Errorf("sample<=1 must forward every event, got %d", s2.n)
	}
}

// FuzzCacheEventRoundTrip is the satellite fuzz seed: any valid event must
// survive encode→decode unchanged.
func FuzzCacheEventRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint64(0x400), uint64(64), uint8(0), uint32(0), int(-1), "lru", uint64(0), false, uint32(0))
	f.Add(uint8(3), uint64(99), uint64(0), uint64(0xfff0), uint8(3), uint32(2047), int(15), "rlr", uint64(512), true, uint32(88))
	f.Add(uint8(5), ^uint64(0), ^uint64(0), ^uint64(0), uint8(255), ^uint32(0), int(1<<20), "", ^uint64(0), true, ^uint32(0))
	f.Fuzz(func(t *testing.T, kind uint8, seq, pc, addr uint64, typ uint8, set uint32, way int, pol string, vblock uint64, vdirty bool, vage uint32) {
		if !utf8.ValidString(pol) {
			t.Skip("encoding/json replaces invalid UTF-8; not a round-trip input")
		}
		e := CacheEvent{
			Kind: EventKind(kind % uint8(numEventKinds)),
			Seq:  seq, PC: pc, Addr: addr, Type: typ, Set: set, Way: way, Policy: pol,
			VictimBlock: vblock, VictimDirty: vdirty, VictimAge: vage,
		}
		var buf bytes.Buffer
		sink := NewJSONLSink(&buf)
		if err := sink.Emit(&e); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEvents(&buf)
		if err != nil {
			t.Fatalf("decode %q: %v", buf.String(), err)
		}
		if len(got) != 1 || !reflect.DeepEqual(got[0], e) {
			t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, e)
		}
	})
}
