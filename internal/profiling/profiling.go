// Package profiling wraps runtime/pprof for the cmd/ tools: every binary
// that replays traces or trains networks takes -cpuprofile/-memprofile
// flags wired through StartCPU and WriteHeap, so a slow run can be handed
// straight to `go tool pprof`. AttachPprof additionally mounts the live
// pprof handlers on the observability endpoint (internal/obs), so an
// in-flight run can be profiled without restarting it.
package profiling

import (
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// AttachPprof mounts the net/http/pprof handlers under /debug/pprof/ on
// mux. Using an explicit mux (instead of net/http/pprof's DefaultServeMux
// side effect) keeps profiling off any server the process did not ask for.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// StartCPU begins CPU profiling into path and returns a stop function that
// flushes and closes the file. When path is empty it is a no-op.
func StartCPU(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an allocation profile to path after a final GC, so the
// numbers reflect live heap rather than collectible garbage. When path is
// empty it is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: create mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("profiling: write mem profile: %w", err)
	}
	return nil
}
