// Package profiling wraps runtime/pprof for the cmd/ tools: every binary
// that replays traces or trains networks takes -cpuprofile/-memprofile
// flags wired through StartCPU and WriteHeap, so a slow run can be handed
// straight to `go tool pprof`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins CPU profiling into path and returns a stop function that
// flushes and closes the file. When path is empty it is a no-op.
func StartCPU(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an allocation profile to path after a final GC, so the
// numbers reflect live heap rather than collectible garbage. When path is
// empty it is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: create mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("profiling: write mem profile: %w", err)
	}
	return nil
}
