// Package analysis implements the §III-B insight-mining pipeline that turns
// a trained RL agent into the design rules behind RLR: the neural-network
// weight heat map (Figure 3), greedy hill-climbing feature selection, the
// preuse-versus-reuse-distance comparison (Figure 4), and the victim
// statistics — age by access type (Figure 5), hits at eviction (Figure 6),
// and recency at eviction (Figure 7).
package analysis

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/mathx"
	"repro/internal/policy"
	"repro/internal/rl"
	"repro/internal/trace"
)

// HeatMapRow is one Figure 3 cell column entry: a Table II feature and its
// importance (mean |input weight| over the feature's slots and the hidden
// layer, averaged across ways for line features).
type HeatMapRow struct {
	Feature rl.Feature
	Weight  float64
}

// HeatMap computes the feature-importance rows for a trained agent, sorted
// by descending weight.
func HeatMap(agent *rl.Agent) []HeatMapRow {
	slots := agent.Featurizer().FeatureSlots()
	net := agent.Network()
	rows := make([]HeatMapRow, 0, len(slots))
	for feat, idxs := range slots {
		var m mathx.RunningMean
		for _, i := range idxs {
			m.Add(net.MeanAbsInputWeight(i))
		}
		rows = append(rows, HeatMapRow{Feature: feat, Weight: m.Mean()})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Weight != rows[j].Weight {
			return rows[i].Weight > rows[j].Weight
		}
		return rows[i].Feature < rows[j].Feature
	})
	return rows
}

// TopFeatures returns the n highest-weight features of a heat map.
func TopFeatures(rows []HeatMapRow, n int) []rl.Feature {
	if n > len(rows) {
		n = len(rows)
	}
	out := make([]rl.Feature, n)
	for i := 0; i < n; i++ {
		out[i] = rows[i].Feature
	}
	return out
}

// HillClimbStep is one round of the §III-B greedy feature search.
type HillClimbStep struct {
	Added   rl.Feature
	Set     rl.FeatureSet
	HitRate float64
}

// HillClimb performs the paper's hill-climbing feature selection: train an
// agent with each single feature, keep the best; then repeatedly add the
// one feature that most improves hit rate, stopping when no candidate
// improves it (or maxFeatures is reached). The returned steps record the
// chosen feature and achieved hit rate per round.
func HillClimb(cfg cache.Config, accesses []trace.Access, opts rl.TrainOptions, maxFeatures int) []HillClimbStep {
	if maxFeatures <= 0 || maxFeatures > int(rl.NumFeatures) {
		maxFeatures = int(rl.NumFeatures)
	}
	var steps []HillClimbStep
	var current rl.FeatureSet
	best := -1.0
	for len(steps) < maxFeatures {
		bestFeat := rl.Feature(-1)
		bestRate := best
		var bestSet rl.FeatureSet
		for f := rl.Feature(0); f < rl.NumFeatures; f++ {
			if current[f] {
				continue
			}
			candidate := current.With(f)
			o := opts
			o.Agent.Features = candidate
			agent := rl.Train(cfg, accesses, o)
			rate := rl.Evaluate(cfg, agent, accesses).HitRate()
			if rate > bestRate {
				bestRate, bestFeat, bestSet = rate, f, candidate
			}
		}
		if bestFeat < 0 {
			break // no feature improves the hit rate: §III-B's stop rule
		}
		current, best = bestSet, bestRate
		steps = append(steps, HillClimbStep{Added: bestFeat, Set: current, HitRate: bestRate})
	}
	return steps
}

// PreuseReuse is the Figure 4 distribution: the share of reused lines whose
// |preuse − reuse| distance difference falls below 10, in [10, 50), and at
// or above 50 set accesses.
type PreuseReuse struct {
	Below10   float64
	Mid10to50 float64
	Above50   float64
	Samples   int64
}

// PreuseReuseDiff replays an LLC access trace and, for every address with
// at least two prior references to its set, compares the previous
// inter-access gap (preuse distance) with the current one (reuse
// distance), both measured in set accesses — Figure 4's methodology.
func PreuseReuseDiff(cfg cache.Config, accesses []trace.Access) PreuseReuse {
	c := cache.New(cfg) // used only for address → set mapping
	setAcc := make([]uint64, cfg.Sets)
	type hist struct {
		t1, t2 uint64
		n      uint8
	}
	last := make(map[uint64]*hist, 1<<16)

	h := mathx.NewHistogram(10, 50)
	for _, a := range accesses {
		set := c.SetIndex(a.Addr)
		blk := c.BlockAddr(a.Addr)
		n := setAcc[set]
		setAcc[set]++
		key := uint64(set)<<40 | (blk & 0xFFFFFFFFFF)
		e := last[key]
		if e == nil {
			last[key] = &hist{t1: n, n: 1}
			continue
		}
		if e.n >= 2 {
			preuse := float64(e.t1 - e.t2)
			reuse := float64(n - e.t1)
			d := preuse - reuse
			if d < 0 {
				d = -d
			}
			h.Add(d)
		}
		e.t2, e.t1 = e.t1, n
		if e.n < 2 {
			e.n = 2
		}
	}
	fr := h.Fractions()
	return PreuseReuse{Below10: fr[0], Mid10to50: fr[1], Above50: fr[2], Samples: h.Total()}
}

// VictimStats aggregates eviction-time metadata — Figures 5, 6, and 7.
type VictimStats struct {
	// AvgAgeByType[t] is the mean age since last access of victims whose
	// last access had type t (Figure 5).
	AvgAgeByType [trace.NumAccessTypes]float64
	CountByType  [trace.NumAccessTypes]int64
	// HitsZero/HitsOne/HitsMore partition victims by hits since insertion
	// (Figure 6), as fractions.
	HitsZero, HitsOne, HitsMore float64
	// RecencyPct[r] is the percentage of victims evicted at recency r
	// (Figure 7; length = associativity).
	RecencyPct []float64
	Victims    int64
}

// CollectVictimStats replays accesses under pol and aggregates the
// eviction statistics of Figures 5–7 from each victim's metadata. For the
// paper's figures pol is the trained RL agent; any policy works.
func CollectVictimStats(cfg cache.Config, pol policy.Policy, accesses []trace.Access) VictimStats {
	sim := cachesim.New(cfg, 1, pol)
	if ag, ok := pol.(*rl.Agent); ok {
		ag.SetSim(sim)
	}
	var ages [trace.NumAccessTypes]mathx.RunningMean
	var hits0, hits1, hitsN int64
	recency := make([]int64, cfg.Ways)
	var victims int64
	for _, a := range accesses {
		res := sim.Step(a)
		if !res.Evicted {
			continue
		}
		v := res.Victim
		victims++
		ages[v.LastAccessType].Add(float64(v.AgeSinceAccess))
		switch {
		case v.HitsSinceInsert == 0:
			hits0++
		case v.HitsSinceInsert == 1:
			hits1++
		default:
			hitsN++
		}
		recency[int(v.Recency)]++
	}
	var out VictimStats
	out.Victims = victims
	for t := range ages {
		out.AvgAgeByType[t] = ages[t].Mean()
		out.CountByType[t] = ages[t].Count()
	}
	if victims > 0 {
		out.HitsZero = float64(hits0) / float64(victims)
		out.HitsOne = float64(hits1) / float64(victims)
		out.HitsMore = float64(hitsN) / float64(victims)
	}
	out.RecencyPct = make([]float64, cfg.Ways)
	for r, c := range recency {
		if victims > 0 {
			out.RecencyPct[r] = 100 * float64(c) / float64(victims)
		}
	}
	return out
}
