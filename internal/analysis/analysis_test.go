package analysis

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/rl"
	"repro/internal/trace"
)

func smallCfg() cache.Config { return cache.Config{Sets: 2, Ways: 4, LineSize: 64} }

func smallOpts() rl.TrainOptions {
	return rl.TrainOptions{
		Agent: rl.AgentConfig{
			Hidden: 16, Epsilon: 0.1, LearningRate: 3e-3, BatchSize: 16,
			ReplayCap: 1024, MinReplay: 64, TrainEvery: 2, TargetSync: 128,
			Seed: 5, Features: rl.AllFeatures(),
		},
		Epochs: 3,
	}
}

func cyclic(nBlocks, reps int) []trace.Access {
	var out []trace.Access
	for r := 0; r < reps; r++ {
		for b := 0; b < nBlocks; b++ {
			out = append(out, trace.Access{
				PC: uint64(0x400 + b*4), Addr: uint64(b) * 2 * 64, Type: trace.Load,
			})
		}
	}
	return out
}

func TestHeatMapCoversAllFeatures(t *testing.T) {
	agent := rl.Train(smallCfg(), cyclic(6, 200), smallOpts())
	rows := HeatMap(agent)
	if len(rows) != int(rl.NumFeatures) {
		t.Fatalf("heat map rows = %d, want %d", len(rows), int(rl.NumFeatures))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Weight > rows[i-1].Weight {
			t.Fatalf("heat map not sorted at %d", i)
		}
	}
	for _, r := range rows {
		if math.IsNaN(r.Weight) || r.Weight < 0 {
			t.Errorf("feature %v weight %v invalid", r.Feature, r.Weight)
		}
	}
	top := TopFeatures(rows, 5)
	if len(top) != 5 {
		t.Errorf("TopFeatures returned %d", len(top))
	}
}

func TestHillClimbFindsUsefulFeature(t *testing.T) {
	// Cap the search to keep the test fast: 2 rounds over a short trace.
	opts := smallOpts()
	opts.Epochs = 2
	accesses := cyclic(6, 120)
	steps := HillClimb(smallCfg(), accesses, opts, 2)
	if len(steps) == 0 {
		t.Fatal("hill climbing selected no features at all")
	}
	if steps[0].HitRate <= 0 {
		t.Errorf("first-feature hit rate = %v", steps[0].HitRate)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].HitRate < steps[i-1].HitRate {
			t.Errorf("hill climb regressed: %v -> %v", steps[i-1].HitRate, steps[i].HitRate)
		}
	}
}

func TestPreuseReuseConstantDistance(t *testing.T) {
	// Strictly periodic reuse: preuse == reuse for every access after the
	// second, so 100% of samples fall in the <10 bucket.
	got := PreuseReuseDiff(smallCfg(), cyclic(4, 50))
	if got.Samples == 0 {
		t.Fatal("no samples collected")
	}
	if got.Below10 < 0.999 {
		t.Errorf("Below10 = %v, want ~1 for periodic trace", got.Below10)
	}
}

func TestPreuseReuseIrregular(t *testing.T) {
	// Alternate a short and a very long gap for one block: |preuse-reuse|
	// is large every time it is measurable.
	var accesses []trace.Access
	push := func(b uint64) {
		accesses = append(accesses, trace.Access{PC: 1, Addr: b * 2 * 64, Type: trace.Load})
	}
	for rep := 0; rep < 30; rep++ {
		push(0)
		push(0) // gap 1
		for f := uint64(1); f <= 100; f++ {
			push(f) // gap 100 before next block-0 access
		}
	}
	got := PreuseReuseDiff(smallCfg(), accesses)
	if got.Above50 == 0 {
		t.Errorf("Above50 = 0 for alternating 1/100 gaps: %+v", got)
	}
	sum := got.Below10 + got.Mid10to50 + got.Above50
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestVictimStatsLRU(t *testing.T) {
	// Under cyclic thrash with LRU every victim has 0 hits and recency 0.
	st := CollectVictimStats(smallCfg(), policy.MustNew("lru"), cyclic(6, 100))
	if st.Victims == 0 {
		t.Fatal("no victims observed")
	}
	if st.HitsZero < 0.999 {
		t.Errorf("HitsZero = %v, want ~1 under thrash", st.HitsZero)
	}
	if st.RecencyPct[0] < 99.9 {
		t.Errorf("LRU victims should all have recency 0: %v", st.RecencyPct)
	}
}

func TestVictimStatsMRUEvictsHighRecency(t *testing.T) {
	st := CollectVictimStats(smallCfg(), policy.MustNew("mru"), cyclic(6, 100))
	if st.Victims == 0 {
		t.Fatal("no victims observed")
	}
	last := len(st.RecencyPct) - 1
	if st.RecencyPct[last] < 99 {
		t.Errorf("MRU victims should have max recency: %v", st.RecencyPct)
	}
}

func TestVictimStatsAgentPrefersPrefetchVictims(t *testing.T) {
	// Mix demand-reused lines with never-reused prefetches; the trained
	// agent should evict prefetched lines younger than demand lines —
	// the Figure 5 shape.
	var accesses []trace.Access
	pfBlock := uint64(1000)
	for rep := 0; rep < 400; rep++ {
		for b := uint64(0); b < 3; b++ {
			accesses = append(accesses, trace.Access{PC: 0x40, Addr: b * 2 * 64, Type: trace.Load})
		}
		accesses = append(accesses, trace.Access{PC: 0x90, Addr: pfBlock * 2 * 64, Type: trace.Prefetch})
		pfBlock++
	}
	agent := rl.Train(smallCfg(), accesses, smallOpts())
	st := CollectVictimStats(smallCfg(), agent, accesses)
	if st.CountByType[trace.Prefetch] == 0 {
		t.Fatal("agent never evicted a prefetched line")
	}
	if st.CountByType[trace.Load] > 0 &&
		st.AvgAgeByType[trace.Prefetch] > st.AvgAgeByType[trace.Load] {
		t.Errorf("prefetch victims older (%.1f) than load victims (%.1f); expect younger",
			st.AvgAgeByType[trace.Prefetch], st.AvgAgeByType[trace.Load])
	}
}
