// bench_hotpath_test.go measures the per-access hot path: oracle next-use
// queries, one simulator step, one NN forward/backward pass, and the
// end-to-end Belady trace replay (chain-driven versus the retained
// map+binary-search reference). Run
//
//	go test -bench=Hotpath -benchmem
//
// or `make bench`; cmd/benchjson -hotpath emits the same measurements as
// BENCH_hotpath.json, including the chain-vs-map replay speedup.
package repro

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/nn"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// hotpathTraceLen is sized so one replay is milliseconds, not seconds.
const hotpathTraceLen = 200_000

var hotpath struct {
	once     sync.Once
	accesses []trace.Access
	cfg      cache.Config
	oracle   *policy.Oracle
}

// hotpathSetup builds one shared synthetic trace with a hot/warm/cold
// address mix over an LLC-like geometry, plus its oracle. The oracle is
// only ever used through the read-only chain API here, so sharing it
// across benchmarks is safe.
func hotpathSetup() (cache.Config, []trace.Access, *policy.Oracle) {
	hotpath.once.Do(func() {
		rng := xrand.New(42)
		accesses := make([]trace.Access, hotpathTraceLen)
		for i := range accesses {
			var b uint64
			switch rng.Intn(4) {
			case 0: // hot: fits in cache
				b = rng.Uint64n(4096)
			case 1: // warm: ~2× cache capacity
				b = 1<<16 + rng.Uint64n(32768)
			default: // cold stream: keeps the sets full and evicting
				b = 1<<24 + uint64(i)
			}
			accesses[i] = trace.Access{PC: rng.Uint64n(64), Addr: b * 64, Type: trace.AccessType(rng.Intn(4))}
		}
		hotpath.accesses = accesses
		hotpath.cfg = cache.Config{Sets: 1024, Ways: 16, LineSize: 64}
		hotpath.oracle = policy.NewOracle(accesses, 64)
	})
	return hotpath.cfg, hotpath.accesses, hotpath.oracle
}

// BenchmarkHotpathOracleNextUseChain drives the in-order cursor path the
// way a simulator does: non-decreasing sequence numbers, one query each.
func BenchmarkHotpathOracleNextUseChain(b *testing.B) {
	_, accesses, _ := hotpathSetup()
	o := policy.NewOracle(accesses, 64) // private: cursor queries are stateful
	n := len(accesses)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := i % n
		if seq == 0 {
			o.ResetReplay()
		}
		sink += o.NextUse(accesses[seq].Addr, uint64(seq))
	}
	_ = sink
}

// BenchmarkHotpathOracleNextUseMap measures the retained random-access
// path: the cursor is parked at the trace end so every query falls back to
// the per-block position map and binary search.
func BenchmarkHotpathOracleNextUseMap(b *testing.B) {
	_, accesses, _ := hotpathSetup()
	o := policy.NewOracle(accesses, 64)
	n := len(accesses)
	o.NextUse(accesses[n-1].Addr, uint64(n-1)) // park the cursor at the end
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := i % (n - 2) // strictly behind the cursor: map path
		sink += o.NextUse(accesses[seq].Addr, uint64(seq))
	}
	_ = sink
}

// BenchmarkHotpathSimulatorStep measures one full simulator access (probe,
// metadata, policy, fill) under LRU.
func BenchmarkHotpathSimulatorStep(b *testing.B) {
	cfg, accesses, _ := hotpathSetup()
	sim := cachesim.New(cfg, 1, policy.MustNew("lru"))
	n := len(accesses)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Step(accesses[i%n])
	}
}

// BenchmarkHotpathMLPForward measures inference through the paper's
// 334-175-16 network.
func BenchmarkHotpathMLPForward(b *testing.B) {
	m := nn.NewMLP(334, 1, nn.LayerSpec{Units: 175, Act: nn.Tanh}, nn.LayerSpec{Units: 16, Act: nn.Linear})
	x := make([]float64, 334)
	for i := range x {
		x[i] = float64(i%13) / 13
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

// BenchmarkHotpathMLPBackward measures one masked (single-action) gradient
// accumulation through the same network.
func BenchmarkHotpathMLPBackward(b *testing.B) {
	m := nn.NewMLP(334, 1, nn.LayerSpec{Units: 175, Act: nn.Tanh}, nn.LayerSpec{Units: 16, Act: nn.Linear})
	x := make([]float64, 334)
	target := make([]float64, 16)
	for i := range target {
		target[i] = math.NaN()
	}
	target[5] = 0.25
	m.Forward(x)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Backward(target)
	}
}

// paperMLP builds the paper's 334-175-16 network plus a deterministic
// input block of b samples laid out row-major for ForwardBatch.
func paperMLP(b int) (*nn.MLP, []float64) {
	m := nn.NewMLP(334, 1, nn.LayerSpec{Units: 175, Act: nn.Tanh}, nn.LayerSpec{Units: 16, Act: nn.Linear})
	xs := make([]float64, b*334)
	for i := range xs {
		xs[i] = float64(i%13) / 13
	}
	return m, xs
}

// BenchmarkHotpathMLPForwardRef measures the retained scalar reference
// path — the pre-batching baseline the batch speedups are judged against.
func BenchmarkHotpathMLPForwardRef(b *testing.B) {
	m, x := paperMLP(1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.ForwardRef(x)
	}
}

// benchForwardBatch reports per-sample ns for a given batch size: one
// iteration evaluates all bs inputs through the matrix kernels, and the
// reported ns/op is divided down so it compares directly with the scalar
// Forward/ForwardRef numbers.
func benchForwardBatch(b *testing.B, bs int) {
	m, xs := paperMLP(bs)
	m.EnsureBatch(bs)
	b.ResetTimer()
	b.ReportAllocs()
	start := b.Elapsed()
	for i := 0; i < b.N; i++ {
		m.ForwardBatch(xs, bs)
	}
	perSample := float64((b.Elapsed() - start).Nanoseconds()) / float64(b.N*bs)
	b.ReportMetric(perSample, "ns/sample")
}

func BenchmarkHotpathMLPForwardBatch1(b *testing.B)  { benchForwardBatch(b, 1) }
func BenchmarkHotpathMLPForwardBatch8(b *testing.B)  { benchForwardBatch(b, 8) }
func BenchmarkHotpathMLPForwardBatch32(b *testing.B) { benchForwardBatch(b, 32) }

// BenchmarkHotpathMLPBackwardBatch8 measures the batched masked-target
// gradient pass (8 samples, one live action each) per sample.
func BenchmarkHotpathMLPBackwardBatch8(b *testing.B) {
	const bs = 8
	m, xs := paperMLP(bs)
	targets := make([]float64, bs*16)
	for i := range targets {
		targets[i] = math.NaN()
	}
	for r := 0; r < bs; r++ {
		targets[r*16+(r%16)] = 0.25
	}
	m.EnsureBatch(bs)
	m.ForwardBatch(xs, bs)
	b.ResetTimer()
	b.ReportAllocs()
	start := b.Elapsed()
	for i := 0; i < b.N; i++ {
		m.BackwardBatch(targets, bs)
	}
	perSample := float64((b.Elapsed() - start).Nanoseconds()) / float64(b.N*bs)
	b.ReportMetric(perSample, "ns/sample")
}

// BenchmarkHotpathMLPQuantForward measures frozen int8 inference through
// the same network — the evaluation-only fast path.
func BenchmarkHotpathMLPQuantForward(b *testing.B) {
	m, x := paperMLP(1)
	q := nn.Quantize(m)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Forward(x)
	}
}

// TestHotpathBatchSpeedupSmoke is the CI regression gate for the batched
// kernels: ForwardBatch at B=8 must be at least 2× faster per sample than
// the scalar reference. The committed BENCH_hotpath.json records ~6× on
// the reference machine; 2× is the generous floor that still catches a
// silent fallback to the scalar path. Skipped under the race detector
// (instrumentation distorts timing) and in -short runs.
func TestHotpathBatchSpeedupSmoke(t *testing.T) {
	if raceEnabled {
		t.Skip("timing smoke is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing smoke skipped in -short mode")
	}
	const bs = 8
	m, xs := paperMLP(bs)
	m.EnsureBatch(bs)
	m.ForwardBatch(xs, bs) // warm scratch
	x1 := xs[:334]

	// Best-of-5 on both sides to suppress scheduler noise on loaded CI.
	const reps, iters = 5, 200
	best := func(f func()) float64 {
		bestNS := math.Inf(1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			if el := float64(time.Since(start).Nanoseconds()); el < bestNS {
				bestNS = el
			}
		}
		return bestNS / iters
	}
	refNS := best(func() { m.ForwardRef(x1) })
	batchNS := best(func() { m.ForwardBatch(xs, bs) }) / bs
	speedup := refNS / batchNS
	t.Logf("scalar ref %.0f ns/sample, batch%d %.0f ns/sample — %.2fx", refNS, bs, batchNS, speedup)
	if speedup < 2 {
		t.Errorf("batched forward speedup %.2fx below the 2x regression floor", speedup)
	}
}

// BenchmarkHotpathBeladyReplayChain replays the whole trace under the
// chain-driven Belady — the end-to-end number the ISSUE's ≥2× target is
// judged on.
func BenchmarkHotpathBeladyReplayChain(b *testing.B) {
	cfg, accesses, oracle := hotpathSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cachesim.RunPolicy(cfg, policy.NewBelady(oracle), accesses)
	}
	b.ReportMetric(float64(len(accesses)), "accesses/replay")
}

// BenchmarkHotpathBeladyReplayMapRef replays the same trace under the
// pre-change map+binary-search Belady, the baseline side of the speedup.
func BenchmarkHotpathBeladyReplayMapRef(b *testing.B) {
	cfg, accesses, oracle := hotpathSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cachesim.RunPolicy(cfg, policy.NewBeladyMapRef(oracle), accesses)
	}
	b.ReportMetric(float64(len(accesses)), "accesses/replay")
}
