// bench_hotpath_test.go measures the per-access hot path: oracle next-use
// queries, one simulator step, one NN forward/backward pass, and the
// end-to-end Belady trace replay (chain-driven versus the retained
// map+binary-search reference). Run
//
//	go test -bench=Hotpath -benchmem
//
// or `make bench`; cmd/benchjson -hotpath emits the same measurements as
// BENCH_hotpath.json, including the chain-vs-map replay speedup.
package repro

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/nn"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// hotpathTraceLen is sized so one replay is milliseconds, not seconds.
const hotpathTraceLen = 200_000

var hotpath struct {
	once     sync.Once
	accesses []trace.Access
	cfg      cache.Config
	oracle   *policy.Oracle
}

// hotpathSetup builds one shared synthetic trace with a hot/warm/cold
// address mix over an LLC-like geometry, plus its oracle. The oracle is
// only ever used through the read-only chain API here, so sharing it
// across benchmarks is safe.
func hotpathSetup() (cache.Config, []trace.Access, *policy.Oracle) {
	hotpath.once.Do(func() {
		rng := xrand.New(42)
		accesses := make([]trace.Access, hotpathTraceLen)
		for i := range accesses {
			var b uint64
			switch rng.Intn(4) {
			case 0: // hot: fits in cache
				b = rng.Uint64n(4096)
			case 1: // warm: ~2× cache capacity
				b = 1<<16 + rng.Uint64n(32768)
			default: // cold stream: keeps the sets full and evicting
				b = 1<<24 + uint64(i)
			}
			accesses[i] = trace.Access{PC: rng.Uint64n(64), Addr: b * 64, Type: trace.AccessType(rng.Intn(4))}
		}
		hotpath.accesses = accesses
		hotpath.cfg = cache.Config{Sets: 1024, Ways: 16, LineSize: 64}
		hotpath.oracle = policy.NewOracle(accesses, 64)
	})
	return hotpath.cfg, hotpath.accesses, hotpath.oracle
}

// BenchmarkHotpathOracleNextUseChain drives the in-order cursor path the
// way a simulator does: non-decreasing sequence numbers, one query each.
func BenchmarkHotpathOracleNextUseChain(b *testing.B) {
	_, accesses, _ := hotpathSetup()
	o := policy.NewOracle(accesses, 64) // private: cursor queries are stateful
	n := len(accesses)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := i % n
		if seq == 0 {
			o.ResetReplay()
		}
		sink += o.NextUse(accesses[seq].Addr, uint64(seq))
	}
	_ = sink
}

// BenchmarkHotpathOracleNextUseMap measures the retained random-access
// path: the cursor is parked at the trace end so every query falls back to
// the per-block position map and binary search.
func BenchmarkHotpathOracleNextUseMap(b *testing.B) {
	_, accesses, _ := hotpathSetup()
	o := policy.NewOracle(accesses, 64)
	n := len(accesses)
	o.NextUse(accesses[n-1].Addr, uint64(n-1)) // park the cursor at the end
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := i % (n - 2) // strictly behind the cursor: map path
		sink += o.NextUse(accesses[seq].Addr, uint64(seq))
	}
	_ = sink
}

// BenchmarkHotpathSimulatorStep measures one full simulator access (probe,
// metadata, policy, fill) under LRU.
func BenchmarkHotpathSimulatorStep(b *testing.B) {
	cfg, accesses, _ := hotpathSetup()
	sim := cachesim.New(cfg, 1, policy.MustNew("lru"))
	n := len(accesses)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Step(accesses[i%n])
	}
}

// BenchmarkHotpathMLPForward measures inference through the paper's
// 334-175-16 network.
func BenchmarkHotpathMLPForward(b *testing.B) {
	m := nn.NewMLP(334, 1, nn.LayerSpec{Units: 175, Act: nn.Tanh}, nn.LayerSpec{Units: 16, Act: nn.Linear})
	x := make([]float64, 334)
	for i := range x {
		x[i] = float64(i%13) / 13
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

// BenchmarkHotpathMLPBackward measures one masked (single-action) gradient
// accumulation through the same network.
func BenchmarkHotpathMLPBackward(b *testing.B) {
	m := nn.NewMLP(334, 1, nn.LayerSpec{Units: 175, Act: nn.Tanh}, nn.LayerSpec{Units: 16, Act: nn.Linear})
	x := make([]float64, 334)
	target := make([]float64, 16)
	for i := range target {
		target[i] = math.NaN()
	}
	target[5] = 0.25
	m.Forward(x)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Backward(target)
	}
}

// BenchmarkHotpathBeladyReplayChain replays the whole trace under the
// chain-driven Belady — the end-to-end number the ISSUE's ≥2× target is
// judged on.
func BenchmarkHotpathBeladyReplayChain(b *testing.B) {
	cfg, accesses, oracle := hotpathSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cachesim.RunPolicy(cfg, policy.NewBelady(oracle), accesses)
	}
	b.ReportMetric(float64(len(accesses)), "accesses/replay")
}

// BenchmarkHotpathBeladyReplayMapRef replays the same trace under the
// pre-change map+binary-search Belady, the baseline side of the speedup.
func BenchmarkHotpathBeladyReplayMapRef(b *testing.B) {
	cfg, accesses, oracle := hotpathSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cachesim.RunPolicy(cfg, policy.NewBeladyMapRef(oracle), accesses)
	}
	b.ReportMetric(float64(len(accesses)), "accesses/replay")
}
