// Command overhead prints the Table I storage-overhead comparison for a
// configurable cache geometry.
//
// Usage:
//
//	overhead                  # 2MB 16-way (the paper's Table I)
//	overhead -mb 8 -ways 16   # the 4-core 8MB LLC (§abstract: 67KB RLR)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/core"
)

func main() {
	var (
		mb   = flag.Int("mb", 2, "cache capacity in MB")
		ways = flag.Int("ways", 16, "associativity")
		line = flag.Int("line", 64, "line size in bytes")
	)
	flag.Parse()

	sets := (*mb << 20) / (*ways * *line)
	cfg := cache.Config{Sets: sets, Ways: *ways, LineSize: uint64(*line)}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("Replacement-policy storage overhead for a %dMB %d-way cache (%d sets)\n\n", *mb, *ways, sets)
	fmt.Printf("%-12s %-8s %10s  %s\n", "policy", "uses PC", "overhead", "source")
	for _, o := range core.TableOne(cfg) {
		pc := "No"
		if o.UsesPC {
			pc = "Yes"
		}
		src := "modeled"
		if o.FromPaper {
			src = "paper-reported (2MB figure)"
		}
		fmt.Printf("%-12s %-8s %9.2fKB  %s\n", o.Policy, pc, o.KB(), src)
	}
}
