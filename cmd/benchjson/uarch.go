package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/uarch/event"
	"repro/internal/workloads"
)

// The -uarch mode benchmarks the event-driven multi-core engine
// (internal/uarch/event) against the legacy core loop and writes
// BENCH_uarch.json: the 1-core byte-for-byte cross-check verdicts, the
// legacy-vs-event wall-clock on identical 1-core runs, and the N-core
// scaling curve (events/sec, geomean IPC, shared-LLC contention) that
// only the event engine can produce past the paper's 4-core table. The
// 8-core row carries per-core results so mix heterogeneity is visible.

type uarchXCheckRow struct {
	Workload   string `json:"workload"`
	Policy     string `json:"policy"`
	OK         bool   `json:"ok"`
	Divergence string `json:"divergence,omitempty"`
}

type uarchCompareRow struct {
	Workload      string  `json:"workload"`
	Policy        string  `json:"policy"`
	LegacyMS      float64 `json:"legacy_ms"`
	EventMS       float64 `json:"event_ms"`
	EventOverhead float64 `json:"event_over_legacy"` // event_ms / legacy_ms
	Events        uint64  `json:"events"`
	EventsPerSec  float64 `json:"events_per_sec"`
}

type uarchCoreRow struct {
	Core         int     `json:"core"`
	Workload     string  `json:"workload"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
}

type uarchScaleRow struct {
	Cores           int            `json:"cores"`
	WallMS          float64        `json:"wall_ms"`
	Events          uint64         `json:"events"`
	EventsPerSec    float64        `json:"events_per_sec"`
	Instructions    uint64         `json:"instructions"`
	GeomeanIPC      float64        `json:"geomean_ipc"`
	LLCAccesses     uint64         `json:"llc_accesses"`
	LLCDemandHitPct float64        `json:"llc_demand_hit_pct"`
	DemandMPKI      float64        `json:"demand_mpki"`
	WBToDRAM        uint64         `json:"wb_to_dram"`
	PerCore         []uarchCoreRow `json:"per_core,omitempty"` // populated for the 8-core row
}

type uarchReport struct {
	Meta             obs.BuildInfo     `json:"meta"`
	Quick            bool              `json:"quick"`
	Policy           string            `json:"policy"` // LLC policy for compare/scaling rows
	Warmup           uint64            `json:"warmup"`
	Measure          uint64            `json:"measure"`
	XCheckOK         bool              `json:"xcheck_ok"` // every cross-check cell agreed
	XCheck           []uarchXCheckRow  `json:"xcheck"`
	Compare          []uarchCompareRow `json:"legacy_vs_event"`
	Scaling          []uarchScaleRow   `json:"scaling"`
	PeakEventsPerSec float64           `json:"peak_events_per_sec"`
}

func runUarch(quick bool, path string) error {
	pol := "drrip"
	warmup, measure := uint64(50_000), uint64(200_000)
	xBenches := []string{"429.mcf", "470.lbm", "483.xalancbmk"}
	xPols := []string{"lru", "drrip", "ship"}
	xInstrs := 120_000
	coreCounts := []int{1, 2, 4, 8, 16}
	if quick {
		warmup, measure = 4_000, 16_000
		xBenches = xBenches[:1]
		xPols = []string{"lru", "drrip"}
		xInstrs = 12_000
		coreCounts = []int{1, 2, 8}
	}

	rep := uarchReport{
		Meta: obs.CollectBuildInfo(), Quick: quick,
		Policy: pol, Warmup: warmup, Measure: measure, XCheckOK: true,
	}

	// 1-core cross-check: legacy and event engines must agree
	// byte-for-byte on the LLC access stream, victim sequence, and Result.
	for _, b := range xBenches {
		ins, err := captureUarchInstrs(b, xInstrs)
		if err != nil {
			return err
		}
		xw := uint64(xInstrs / 5)
		xm := uint64(xInstrs) - xw
		for _, p := range xPols {
			row := uarchXCheckRow{Workload: b, Policy: p, OK: true}
			if d := event.CrossCheck(uarch.ScaledConfig(1, 8), p, ins, xw, xm); d != nil {
				row.OK = false
				row.Divergence = d.String()
				rep.XCheckOK = false
			}
			rep.XCheck = append(rep.XCheck, row)
			fmt.Fprintf(os.Stderr, "xcheck %-16s %-8s ok=%v\n", b, p, row.OK)
		}
	}

	// Legacy vs event wall-clock on identical 1-core runs.
	for _, b := range []string{"429.mcf", "450.soplex"} {
		spec, err := workloads.ByName(b)
		if err != nil {
			return err
		}
		start := time.Now()
		legacyRes := uarch.NewSystem(uarch.ScaledConfig(1, 8), policy.MustNew(pol)).
			RunSingle(workloads.New(spec), warmup, measure)
		legacyMS := msSince(start)

		start = time.Now()
		evSys := event.NewSystem(uarch.ScaledConfig(1, 8), policy.MustNew(pol))
		eventRes := evSys.RunSingle(workloads.New(spec), warmup, measure)
		eventMS := msSince(start)
		if legacyRes != eventRes {
			return fmt.Errorf("%s: legacy and event results diverged in the timing pass: %+v vs %+v",
				b, legacyRes, eventRes)
		}
		row := uarchCompareRow{
			Workload: b, Policy: pol,
			LegacyMS: legacyMS, EventMS: eventMS,
			Events: evSys.Engine().EventCount(),
		}
		if legacyMS > 0 {
			row.EventOverhead = eventMS / legacyMS
		}
		if eventMS > 0 {
			row.EventsPerSec = float64(row.Events) / (eventMS / 1000)
		}
		rep.Compare = append(rep.Compare, row)
		fmt.Fprintf(os.Stderr, "1-core %-16s legacy %7.1fms   event %7.1fms (%.2fx)   %.2fM events/s\n",
			b, legacyMS, eventMS, row.EventOverhead, row.EventsPerSec/1e6)
	}

	// N-core scaling through the event engine. Mixes cycle the 8 training
	// workloads so every row is deterministic and self-describing.
	names := workloads.TrainingNames()
	for _, cores := range coreCounts {
		mix := make([]string, cores)
		srcs := make([]uarch.InstrSource, cores)
		for i := range srcs {
			mix[i] = names[i%len(names)]
			spec, err := workloads.ByName(mix[i])
			if err != nil {
				return err
			}
			srcs[i] = workloads.New(spec)
		}
		sys := event.NewSystem(uarch.ScaledConfig(cores, 8), policy.MustNew(pol))
		start := time.Now()
		results := sys.RunMulti(srcs, warmup, measure)
		wallMS := msSince(start)

		row := uarchScaleRow{Cores: cores, WallMS: wallMS, Events: sys.Engine().EventCount()}
		ipcs := make([]float64, len(results))
		for i, r := range results {
			row.Instructions += r.Instructions
			ipcs[i] = r.IPC()
		}
		gm, err := mathx.GeoMean(ipcs)
		if err != nil {
			return err
		}
		row.GeomeanIPC = gm
		if wallMS > 0 {
			row.EventsPerSec = float64(row.Events) / (wallMS / 1000)
		}
		st := sys.Stats()
		row.LLCAccesses = st.Accesses
		if d := st.DemandHits + st.DemandMisses; d > 0 {
			row.LLCDemandHitPct = 100 * float64(st.DemandHits) / float64(d)
		}
		row.DemandMPKI = results[0].DemandMPKI
		row.WBToDRAM = sys.WBToDRAM()
		if cores == 8 {
			for i, r := range results {
				row.PerCore = append(row.PerCore, uarchCoreRow{
					Core: i, Workload: mix[i],
					Instructions: r.Instructions, Cycles: r.Cycles, IPC: r.IPC(),
				})
			}
		}
		if row.EventsPerSec > rep.PeakEventsPerSec {
			rep.PeakEventsPerSec = row.EventsPerSec
		}
		rep.Scaling = append(rep.Scaling, row)
		fmt.Fprintf(os.Stderr, "%2d-core %8.1fms   %.2fM events/s   gIPC %.3f   LLC demand hit %5.2f%%\n",
			cores, wallMS, row.EventsPerSec/1e6, row.GeomeanIPC, row.LLCDemandHitPct)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
		return nil
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (xcheck_ok=%v, peak %.2fM events/s)\n",
		path, rep.XCheckOK, rep.PeakEventsPerSec/1e6)
	return nil
}

func captureUarchInstrs(name string, n int) ([]trace.Instr, error) {
	spec, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	gen := workloads.New(spec)
	ins := make([]trace.Instr, n)
	for i := range ins {
		ins[i] = gen.Next()
	}
	return ins, nil
}
