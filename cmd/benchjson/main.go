// Command benchjson measures the wall-clock of each experiment at jobs=1
// versus jobs=NumCPU and writes the results as JSON, so the perf
// trajectory of the parallel engine is tracked across PRs.
//
// Usage:
//
//	benchjson                         # all experiments at BenchScale
//	benchjson -run fig10,fig4 -o BENCH_parallel.json
//	benchjson -hotpath                # per-access hot path -> BENCH_hotpath.json
//	benchjson -hotpath -quick -o -    # CI smoke: small trace, stdout
//	benchjson -intervals              # representative intervals -> BENCH_intervals.json
//	benchjson -intervals -quick -o -  # CI smoke: one small workload, stdout
//	benchjson -uarch                  # event-engine scaling -> BENCH_uarch.json
//	benchjson -uarch -quick -o -      # CI smoke: short runs, stdout
//
// The memo caches are cleared before every timed run, so both columns
// measure cold, full work; the speedup column is serial/parallel. With
// -hotpath it instead measures the per-access inner loops and the
// chain-vs-map Belady replay speedup (see hotpath.go).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sched"
)

type entry struct {
	Experiment string  `json:"experiment"`
	SerialMS   float64 `json:"serial_ms"`   // jobs=1
	ParallelMS float64 `json:"parallel_ms"` // jobs=NumCPU
	Speedup    float64 `json:"speedup"`
	Rows       int     `json:"rows"`
}

type report struct {
	Meta            obs.BuildInfo `json:"meta"` // machine/toolchain attribution
	Scale           string        `json:"scale"`
	Jobs            int           `json:"jobs"` // the parallel column's worker count
	NumCPU          int           `json:"num_cpu"`
	Results         []entry       `json:"results"`
	TotalSerialMS   float64       `json:"total_serial_ms"`
	TotalParallelMS float64       `json:"total_parallel_ms"`
	TotalSpeedup    float64       `json:"total_speedup"`
}

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.String("scale", "bench", "scale: quick, full, or bench")
		out     = flag.String("o", "", "output file ('-' for stdout; default BENCH_parallel.json or BENCH_hotpath.json)")
		jobs    = flag.Int("jobs", 0, "parallel column's worker count (0 = NumCPU)")
		hotpath = flag.Bool("hotpath", false, "measure the per-access hot path instead of the experiment grid")
		intvls  = flag.Bool("intervals", false, "measure representative-interval selection vs full-trace simulation")
		uarchF  = flag.Bool("uarch", false, "measure the event-driven multi-core engine vs the legacy core loop")
		quick   = flag.Bool("quick", false, "with -hotpath/-intervals/-uarch: small traces and short budgets (CI smoke)")
	)
	flag.Parse()

	if *uarchF {
		path := *out
		if path == "" {
			path = "BENCH_uarch.json"
		}
		if err := runUarch(*quick, path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *intvls {
		path := *out
		if path == "" {
			path = "BENCH_intervals.json"
		}
		if err := runIntervals(*quick, *jobs, path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *hotpath {
		path := *out
		if path == "" {
			path = "BENCH_hotpath.json"
		}
		if err := runHotpath(*quick, path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		*out = "BENCH_parallel.json"
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "full":
		s = experiments.FullScale()
	case "bench":
		s = experiments.BenchScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	var ids []string
	if *runList == "all" {
		for _, e := range experiments.List() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*runList, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	par := *jobs
	if par <= 0 {
		par = runtime.NumCPU()
	}
	rep := report{Meta: obs.CollectBuildInfo(), Scale: s.Name, Jobs: par, NumCPU: runtime.NumCPU()}
	timeRun := func(id string, workers int) (time.Duration, int, error) {
		sched.SetWorkers(workers)
		experiments.ResetCaches() // cold: time the full work, not the memo
		start := time.Now()
		tbl, err := experiments.Run(id, s)
		if err != nil {
			return 0, 0, err
		}
		return time.Since(start), len(tbl.Rows), nil
	}
	for _, id := range ids {
		serial, rows, err := timeRun(id, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (jobs=1): %v\n", id, err)
			os.Exit(1)
		}
		parallel, _, err := timeRun(id, par)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (jobs=%d): %v\n", id, par, err)
			os.Exit(1)
		}
		e := entry{
			Experiment: id,
			SerialMS:   float64(serial.Microseconds()) / 1000,
			ParallelMS: float64(parallel.Microseconds()) / 1000,
			Rows:       rows,
		}
		if parallel > 0 {
			e.Speedup = float64(serial) / float64(parallel)
		}
		rep.Results = append(rep.Results, e)
		rep.TotalSerialMS += e.SerialMS
		rep.TotalParallelMS += e.ParallelMS
		fmt.Fprintf(os.Stderr, "%-12s jobs=1 %8.0fms   jobs=%d %8.0fms   %.2fx\n",
			id, e.SerialMS, par, e.ParallelMS, e.Speedup)
	}
	if rep.TotalParallelMS > 0 {
		rep.TotalSpeedup = rep.TotalSerialMS / rep.TotalParallelMS
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (total: jobs=1 %.0fms, jobs=%d %.0fms, %.2fx)\n",
		*out, rep.TotalSerialMS, par, rep.TotalParallelMS, rep.TotalSpeedup)
}
