package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// The -hotpath mode measures the per-access inner loops (oracle query,
// simulator step, NN forward/backward) and the end-to-end Belady replay
// under the chain-driven policy versus the retained map+binary-search
// reference, writing BENCH_hotpath.json. The baseline lives in the same
// file so the chain speedup is tracked PR over PR; the ISSUE-2 acceptance
// bar is replay_speedup >= 2.

type hotpathMicro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type hotpathReport struct {
	Meta                obs.BuildInfo `json:"meta"` // machine/toolchain attribution
	TraceLen            int           `json:"trace_len"`
	Sets                int           `json:"sets"`
	Ways                int           `json:"ways"`
	Quick               bool          `json:"quick"`
	BaselineMS          float64       `json:"baseline_replay_ms"` // belady-mapref, per replay
	ChainMS             float64       `json:"chain_replay_ms"`    // chain-driven belady, per replay
	BaselineNsPerAccess float64       `json:"baseline_ns_per_access"`
	ChainNsPerAccess    float64       `json:"chain_ns_per_access"`
	ReplaySpeedup       float64       `json:"replay_speedup"`
	// Batched/quantized NN path, per-sample vs the scalar reference
	// forward (mlp_forward_ref). The ISSUE-6 acceptance bar is
	// batch_speedup_32 >= 5.
	BatchSpeedup8  float64        `json:"batch_speedup_8"`
	BatchSpeedup32 float64        `json:"batch_speedup_32"`
	QuantSpeedup   float64        `json:"quant_speedup"`
	Micro          []hotpathMicro `json:"micro"`
}

// hotpathTrace mirrors the synthetic mix of bench_hotpath_test.go: hot
// lines that fit in cache (hot blocks), a warm working set ~2× capacity
// (warm blocks), and a cold stream that keeps every set full and
// evicting.
func hotpathTrace(n int, hot, warm uint64) []trace.Access {
	rng := xrand.New(42)
	accesses := make([]trace.Access, n)
	for i := range accesses {
		var b uint64
		switch rng.Intn(4) {
		case 0:
			b = rng.Uint64n(hot)
		case 1:
			b = 1<<16 + rng.Uint64n(warm)
		default:
			b = 1<<24 + uint64(i)
		}
		accesses[i] = trace.Access{PC: rng.Uint64n(64), Addr: b * 64, Type: trace.AccessType(rng.Intn(4))}
	}
	return accesses
}

// timeOp measures ns/op of f by doubling the iteration count until one
// timed pass exceeds budget.
func timeOp(budget time.Duration, f func()) float64 {
	f() // warm-up
	for n := 1; ; n *= 2 {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		if el := time.Since(start); el >= budget {
			return float64(el.Nanoseconds()) / float64(n)
		}
	}
}

func runHotpath(quick bool, outPath string) error {
	traceLen := 200_000
	opBudget := 300 * time.Millisecond
	replayReps := 5
	cfg := cache.Config{Sets: 1024, Ways: 16, LineSize: 64}
	hot, warm := uint64(4096), uint64(32768)
	if quick {
		// Scale the cache and working sets together so the replay still
		// spends its time in victim scans, not warm-up fills.
		traceLen = 30_000
		opBudget = 20 * time.Millisecond
		replayReps = 2
		cfg.Sets = 128
		hot, warm = 512, 4096
	}
	accesses := hotpathTrace(traceLen, hot, warm)
	oracle := policy.NewOracle(accesses, cfg.LineSize)

	rep := hotpathReport{Meta: obs.CollectBuildInfo(), TraceLen: traceLen, Sets: cfg.Sets, Ways: cfg.Ways, Quick: quick}

	// End-to-end Belady replay, chain vs map reference. Both policies use
	// the shared oracle read-only; best-of-reps suppresses scheduler noise.
	replay := func(mk func(*policy.Oracle) policy.Policy) float64 {
		best := time.Duration(1<<62 - 1)
		for r := 0; r < replayReps; r++ {
			start := time.Now()
			cachesim.RunPolicy(cfg, mk(oracle), accesses)
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return float64(best.Nanoseconds())
	}
	chainNS := replay(func(o *policy.Oracle) policy.Policy { return policy.NewBelady(o) })
	baseNS := replay(func(o *policy.Oracle) policy.Policy { return policy.NewBeladyMapRef(o) })
	rep.ChainMS = chainNS / 1e6
	rep.BaselineMS = baseNS / 1e6
	rep.ChainNsPerAccess = chainNS / float64(traceLen)
	rep.BaselineNsPerAccess = baseNS / float64(traceLen)
	if chainNS > 0 {
		rep.ReplaySpeedup = baseNS / chainNS
	}

	// Oracle query paths.
	chainOracle := policy.NewOracle(accesses, cfg.LineSize)
	seq := 0
	rep.Micro = append(rep.Micro, hotpathMicro{
		Name: "oracle_nextuse_chain",
		NsPerOp: timeOp(opBudget, func() {
			if seq == 0 {
				chainOracle.ResetReplay()
			}
			chainOracle.NextUse(accesses[seq].Addr, uint64(seq))
			seq = (seq + 1) % traceLen
		}),
	})
	mapOracle := policy.NewOracle(accesses, cfg.LineSize)
	mapOracle.NextUse(accesses[traceLen-1].Addr, uint64(traceLen-1)) // park cursor at end
	mseq := 0
	rep.Micro = append(rep.Micro, hotpathMicro{
		Name: "oracle_nextuse_map",
		NsPerOp: timeOp(opBudget, func() {
			mapOracle.NextUse(accesses[mseq].Addr, uint64(mseq))
			mseq = (mseq + 1) % (traceLen - 2)
		}),
	})

	// Simulator step under LRU: ns/op and allocs/op.
	sim := cachesim.New(cfg, 1, policy.MustNew("lru"))
	i := 0
	stepNS := timeOp(opBudget, func() {
		sim.Step(accesses[i%traceLen])
		i++
	})
	stepAllocs := testing.AllocsPerRun(1000, func() {
		sim.Step(accesses[i%traceLen])
		i++
	})
	rep.Micro = append(rep.Micro, hotpathMicro{Name: "simulator_step", NsPerOp: stepNS, AllocsPerOp: stepAllocs})

	// The paper's 334-175-16 network.
	m := nn.NewMLP(334, 1, nn.LayerSpec{Units: 175, Act: nn.Tanh}, nn.LayerSpec{Units: 16, Act: nn.Linear})
	x := make([]float64, 334)
	for j := range x {
		x[j] = float64(j%13) / 13
	}
	fwdNS := timeOp(opBudget, func() { m.Forward(x) })
	fwdAllocs := testing.AllocsPerRun(200, func() { m.Forward(x) })
	rep.Micro = append(rep.Micro, hotpathMicro{Name: "mlp_forward", NsPerOp: fwdNS, AllocsPerOp: fwdAllocs})

	target := make([]float64, 16)
	for j := range target {
		target[j] = math.NaN()
	}
	target[5] = 0.25
	m.Forward(x)
	bwdNS := timeOp(opBudget, func() { m.Backward(target) })
	bwdAllocs := testing.AllocsPerRun(200, func() { m.Backward(target) })
	rep.Micro = append(rep.Micro, hotpathMicro{Name: "mlp_backward", NsPerOp: bwdNS, AllocsPerOp: bwdAllocs})

	// Scalar reference forward: the pre-batching baseline every batched and
	// quantized per-sample number is compared against.
	refNS := timeOp(opBudget, func() { m.ForwardRef(x) })
	refAllocs := testing.AllocsPerRun(200, func() { m.ForwardRef(x) })
	rep.Micro = append(rep.Micro, hotpathMicro{Name: "mlp_forward_ref", NsPerOp: refNS, AllocsPerOp: refAllocs})

	// Batched forward sweep; ns_per_op is PER SAMPLE (one ForwardBatch call
	// evaluates bs inputs).
	batchNS := map[int]float64{}
	for _, bs := range []int{1, 8, 32} {
		xs := make([]float64, bs*334)
		for j := range xs {
			xs[j] = float64(j%13) / 13
		}
		m.EnsureBatch(bs)
		m.ForwardBatch(xs, bs) // warm scratch before the alloc count
		ns := timeOp(opBudget, func() { m.ForwardBatch(xs, bs) }) / float64(bs)
		allocs := testing.AllocsPerRun(200, func() { m.ForwardBatch(xs, bs) })
		batchNS[bs] = ns
		rep.Micro = append(rep.Micro, hotpathMicro{
			Name: fmt.Sprintf("mlp_forward_batch%d", bs), NsPerOp: ns, AllocsPerOp: allocs,
		})
	}
	if batchNS[8] > 0 {
		rep.BatchSpeedup8 = refNS / batchNS[8]
	}
	if batchNS[32] > 0 {
		rep.BatchSpeedup32 = refNS / batchNS[32]
	}

	// Batched masked backward at the training minibatch shape.
	{
		const bs = 8
		xs := make([]float64, bs*334)
		for j := range xs {
			xs[j] = float64(j%13) / 13
		}
		targets := make([]float64, bs*16)
		for j := range targets {
			targets[j] = math.NaN()
		}
		for r := 0; r < bs; r++ {
			targets[r*16+(r%16)] = 0.25
		}
		m.EnsureBatch(bs)
		m.ForwardBatch(xs, bs)
		ns := timeOp(opBudget, func() { m.BackwardBatch(targets, bs) }) / float64(bs)
		allocs := testing.AllocsPerRun(200, func() { m.BackwardBatch(targets, bs) })
		rep.Micro = append(rep.Micro, hotpathMicro{Name: "mlp_backward_batch8", NsPerOp: ns, AllocsPerOp: allocs})
	}

	// Frozen int8 inference (evaluation-only path).
	q := nn.Quantize(m)
	quantNS := timeOp(opBudget, func() { q.Forward(x) })
	quantAllocs := testing.AllocsPerRun(200, func() { q.Forward(x) })
	rep.Micro = append(rep.Micro, hotpathMicro{Name: "mlp_quant_forward", NsPerOp: quantNS, AllocsPerOp: quantAllocs})
	if quantNS > 0 {
		rep.QuantSpeedup = refNS / quantNS
	}

	fmt.Fprintf(os.Stderr, "belady replay: chain %.1fms vs mapref %.1fms over %d accesses — %.2fx\n",
		rep.ChainMS, rep.BaselineMS, traceLen, rep.ReplaySpeedup)
	fmt.Fprintf(os.Stderr, "mlp forward: batch8 %.2fx, batch32 %.2fx, int8 %.2fx per sample vs scalar ref\n",
		rep.BatchSpeedup8, rep.BatchSpeedup32, rep.QuantSpeedup)
	for _, mi := range rep.Micro {
		fmt.Fprintf(os.Stderr, "%-22s %10.1f ns/op  %6.1f allocs/op\n", mi.Name, mi.NsPerOp, mi.AllocsPerOp)
	}
	// The 2x bar applies to the full-size run; the quick smoke's trace is
	// too short to amortize warm-up, so only sanity-check it for >= 1x.
	bar := 2.0
	if quick {
		bar = 1.0
	}
	if rep.ReplaySpeedup < bar {
		fmt.Fprintf(os.Stderr, "WARNING: chain replay speedup %.2fx below the %.0fx bar\n", rep.ReplaySpeedup, bar)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		os.Stdout.Write(data)
		return nil
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}
