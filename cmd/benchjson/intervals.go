package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/intervals"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// The -intervals mode measures representative-interval selection against
// full-trace simulation and writes BENCH_intervals.json. For each
// workload it generates a chunked trace on disk, runs the whole policy
// zoo over the full trace, then runs the same zoo over the k-means-chosen
// representative intervals, and reports the weighted-vs-full hit rates,
// the Kendall-τ agreement of the two policy rankings, and the wall-clock
// speedup (selection cost included). Both passes fan the zoo out on
// internal/sched with the same worker count, so the ratio is apples to
// apples. The ISSUE-7 acceptance bar is speedup ≥ 10 with τ ≥ 0.9 on at
// least one multi-million-access workload.

// intervalsZoo is the policy zoo both passes rank. Two registry policies
// are excluded on methodological grounds: Belady, whose oracle indexes
// absolute trace positions and would need per-window re-derivation, and
// MRU, whose full-trace hit rate is non-stationary (it pins early garbage
// and degrades monotonically for millions of accesses), so no interval
// scheme with bounded warmup can reproduce it.
var intervalsZoo = []string{
	"lru", "random", "srrip", "brrip", "drrip",
	"ship", "ship++", "hawkeye", "eva", "pdp", "rwp",
}

var intervalsQuickZoo = []string{"lru", "random", "srrip", "ship", "hawkeye"}

type intervalsPolicyRow struct {
	Policy      string  `json:"policy"`
	FullHitPct  float64 `json:"full_hit_pct"`
	RepHitPct   float64 `json:"rep_hit_pct"`
	AbsErrorPct float64 `json:"abs_error_pct"` // |full − rep| in hit-rate points
}

type intervalsWorkload struct {
	Workload   string `json:"workload"`
	Accesses   uint64 `json:"accesses"`
	Windows    int    `json:"windows"`
	K          int    `json:"k"`
	Reps       int    `json:"reps"`
	MeasuredPerPolicy uint64  `json:"measured_per_policy"` // accesses simulated per policy, excl. warmup
	CoveragePct       float64 `json:"coverage_pct"`        // measured / full
	FullMS      float64 `json:"full_ms"`      // zoo over the full trace
	SelectMS    float64 `json:"select_ms"`    // signatures + clustering (once)
	EvalMS      float64 `json:"eval_ms"`      // zoo over the representatives
	IntervalsMS float64 `json:"intervals_ms"` // select + eval
	Speedup     float64 `json:"speedup"`      // full / intervals
	KendallTau  float64 `json:"kendall_tau"`  // ranking agreement across the zoo
	MaxAbsErrorPct float64              `json:"max_abs_error_pct"`
	Policies       []intervalsPolicyRow `json:"policies"`
}

type intervalsReport struct {
	Meta       obs.BuildInfo       `json:"meta"`
	Quick      bool                `json:"quick"`
	Jobs       int                 `json:"jobs"`
	Window     int                 `json:"window"`
	K          int                 `json:"k"`
	Warmup     uint64              `json:"warmup"`
	Zoo        []string            `json:"zoo"`
	Workloads  []intervalsWorkload `json:"workloads"`
	MinTau     float64             `json:"min_tau"`
	MaxSpeedup float64             `json:"max_speedup"`
}

func runIntervals(quick bool, jobs int, path string) error {
	// Geometry note: the cache must be small enough that a warmup of
	// `warmup` accesses reaches steady state inside each representative
	// (a mostly-cold cache makes every policy behave identically — no
	// evictions, no ranking). 512×16 = 512KB keeps eviction pressure high
	// on multi-million-access traces while warmup stays a small fraction
	// of the trace.
	n := 24_000_000
	window, k, warmup := 32_768, 8, uint64(131_072)
	zoo := intervalsZoo
	names := []string{"429.mcf", "450.soplex", "483.xalancbmk"}
	ccfg := cache.Config{Sets: 512, Ways: 16, LineSize: 64}
	if quick {
		n, window, k, warmup = 300_000, 8192, 4, 8192
		zoo = intervalsQuickZoo
		names = names[:1]
		ccfg = cache.Config{Sets: 128, Ways: 16, LineSize: 64}
	}
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	sched.SetWorkers(jobs)

	dir, err := os.MkdirTemp("", "benchjson-intervals-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rep := intervalsReport{
		Meta: obs.CollectBuildInfo(), Quick: quick, Jobs: jobs,
		Window: window, K: k, Warmup: warmup, Zoo: zoo,
	}
	for _, name := range names {
		w, err := intervalsOneWorkload(name, n, window, k, warmup, zoo, ccfg, dir)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rep.Workloads = append(rep.Workloads, w)
		if w.KendallTau < rep.MinTau || len(rep.Workloads) == 1 {
			rep.MinTau = w.KendallTau
		}
		if w.Speedup > rep.MaxSpeedup {
			rep.MaxSpeedup = w.Speedup
		}
		fmt.Fprintf(os.Stderr, "%-16s full %8.0fms   intervals %7.0fms (%5.1f%% of trace)   %5.2fx   τ=%.3f   maxΔ=%.2fpp\n",
			name, w.FullMS, w.IntervalsMS, w.CoveragePct, w.Speedup, w.KendallTau, w.MaxAbsErrorPct)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
		return nil
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (max speedup %.2fx, min τ %.3f)\n", path, rep.MaxSpeedup, rep.MinTau)
	return nil
}

func intervalsOneWorkload(name string, n, window, k int, warmup uint64, zoo []string, ccfg cache.Config, dir string) (intervalsWorkload, error) {
	var w intervalsWorkload
	spec, err := workloads.ByName(name)
	if err != nil {
		return w, err
	}
	path := filepath.Join(dir, name+".llct")
	wrote, err := workloads.WriteChunkedLLCAccesses(spec, n, path, trace.ChunkedWriterOptions{})
	if err != nil {
		return w, err
	}
	cf, err := trace.OpenChunked(path)
	if err != nil {
		return w, err
	}
	defer cf.Close()
	w = intervalsWorkload{Workload: name, Accesses: wrote, K: k}

	// Full-trace pass: the whole zoo, fanned out.
	start := time.Now()
	fullStats, err := sched.Map(len(zoo), func(i int) (cachesim.Stats, error) {
		return cachesim.RunFramesPolicy(ccfg, policy.MustNew(zoo[i]), cf)
	})
	if err != nil {
		return w, err
	}
	w.FullMS = msSince(start)

	// Interval pass: select once, then the zoo over the representatives.
	start = time.Now()
	sel, err := intervals.Select(cf, intervals.Config{
		Window: window, K: k, Seed: 1, LineSize: ccfg.LineSize, Sets: ccfg.Sets,
	})
	if err != nil {
		return w, err
	}
	w.SelectMS = msSince(start)
	w.Windows = sel.NumWindows
	w.Reps = len(sel.Reps)
	w.MeasuredPerPolicy = sel.SimulatedAccesses()
	w.CoveragePct = 100 * float64(w.MeasuredPerPolicy) / float64(wrote)

	start = time.Now()
	repRes, err := sched.Map(len(zoo), func(i int) (intervals.RepResult, error) {
		return intervals.EvaluateRepresentatives(ccfg, func() policy.Policy { return policy.MustNew(zoo[i]) }, cf, sel, warmup)
	})
	if err != nil {
		return w, err
	}
	w.EvalMS = msSince(start)
	w.IntervalsMS = w.SelectMS + w.EvalMS
	if w.IntervalsMS > 0 {
		w.Speedup = w.FullMS / w.IntervalsMS
	}

	full := make([]float64, len(zoo))
	repr := make([]float64, len(zoo))
	for i, pname := range zoo {
		full[i] = fullStats[i].HitRate()
		repr[i] = repRes[i].HitRate
		row := intervalsPolicyRow{
			Policy:      pname,
			FullHitPct:  full[i],
			RepHitPct:   repr[i],
			AbsErrorPct: abs(full[i] - repr[i]),
		}
		if row.AbsErrorPct > w.MaxAbsErrorPct {
			w.MaxAbsErrorPct = row.AbsErrorPct
		}
		w.Policies = append(w.Policies, row)
	}
	w.KendallTau = stats.KendallTau(full, repr)
	return w, nil
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
