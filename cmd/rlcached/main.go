// Command rlcached serves the policy-zoo cache over HTTP: a key/value
// cache whose eviction runs any registered replacement policy (lru, drrip,
// ship, hawkeye, cbr, rlr, ...) over a sharded, byte-budgeted synthetic
// set geometry. See internal/server for the protocol.
//
// Usage:
//
//	rlcached                                  # lru on :8940, 256 MiB
//	rlcached -policy drrip -shards 4 -mem-mb 512
//	rlcached -addr 127.0.0.1:0 -addr-file a   # ephemeral port for scripts
//	rlcached -obs-addr 127.0.0.1:9100         # separate obs endpoint
//	rlcached -span-trace ring:4096@100        # sample request spans to /spans
//
// The server mounts /kv/<key> (GET/PUT/DELETE), /stats (JSON), /metrics
// (obs registry; ?format=prometheus for the exposition format), /window
// (sliding-window metrics), /topkeys (heavy-hitter keys), /spans (recent
// sampled spans, ring sinks only), and /healthz on -addr; -obs-addr
// additionally serves the standard obs endpoint (metrics, expvar, pprof).
// Windowed metrics and heavy-hitter sketches are on by default (-window,
// -topk); span tracing is opt-in (-span-trace). `obstool top -addr URL`
// renders the live view.
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	_ "repro/internal/core" // registers rlr / rlr-unopt / rlr-mc
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8940", "listen address (use :0 for an ephemeral port)")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file (for scripts)")
		polName   = flag.String("policy", "lru", "replacement policy (internal/policy registry name)")
		shards    = flag.Int("shards", 0, "tag shards, power of two (0 = NumCPU rounded down to a power of two)")
		sets      = flag.Int("sets", 4096, "total synthetic sets across shards (power of two)")
		ways      = flag.Int("ways", 16, "ways per synthetic set")
		memMB     = flag.Int64("mem-mb", 256, "total byte budget in MiB, split across shards")
		maxObject = flag.Int64("max-object", 0, "admission bound in bytes; larger PUTs bypass (0 = budget/shards/4)")
		obsAddr   = flag.String("obs-addr", "", "also serve the obs endpoint (metrics/expvar/pprof) on this address")

		window    = flag.Duration("window", time.Minute, "sliding-window metrics span for /window (0 disables)")
		winBucket = flag.Duration("window-bucket", time.Second, "sliding-window bucket duration")
		topK      = flag.Int("topk", 16, "heavy-hitter keys tracked per shard for /topkeys (0 disables)")
		spanSpec  = flag.String("span-trace", "", "sample request spans into this sink: jsonl:PATH[@N], ring:N[@M], or discard[@N] (ring spans are served at /spans)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *shards <= 0 {
		n := runtime.NumCPU()
		*shards = 1 << (bits.Len(uint(n)) - 1) // round down to a power of two
	}
	obs.Enable() // the server is long-lived; metrics are the point

	tel := server.TelemetryConfig{
		Window:       *window,
		WindowBucket: *winBucket,
		TopK:         *topK,
	}
	if *spanSpec != "" {
		sink, ring, sample, err := obs.OpenSpanSink(*spanSpec)
		if err != nil {
			fail(err)
		}
		tel.Spans = obs.NewSpanTracer(sink, sample)
		tel.SpanRing = ring
		defer tel.Spans.Close()
		fmt.Printf("rlcached: span tracing to %s (1 in %d requests)\n", *spanSpec, sample)
	}

	srv, err := server.New(server.Config{
		Policy:         *polName,
		Shards:         *shards,
		Sets:           *sets,
		Ways:           *ways,
		MemoryBytes:    *memMB << 20,
		MaxObjectBytes: *maxObject,
		Telemetry:      tel,
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fail(err)
		}
	}
	if *obsAddr != "" {
		obsBound, obsShutdown, err := obs.Serve(*obsAddr, nil)
		if err != nil {
			fail(err)
		}
		defer obsShutdown()
		fmt.Printf("rlcached: obs endpoint on http://%s\n", obsBound)
	}

	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	fmt.Printf("rlcached: listening on http://%s policy=%s shards=%d sets=%d ways=%d mem=%dMiB\n",
		bound, *polName, *shards, *sets, *ways, *memMB)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("rlcached: %v — draining\n", s)
		sn := srv.Snapshot()
		fmt.Printf("rlcached: served gets=%d hit_rate=%.2f%% fills=%d evictions=%d bytes=%d\n",
			sn.Totals.Gets, sn.HitRatePct(), sn.Totals.Fills,
			sn.Totals.Evictions+sn.Totals.BudgetEvictions, sn.Totals.Bytes)
		httpSrv.Close()
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}
}
