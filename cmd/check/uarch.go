package main

import (
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/uarch/event"
	"repro/internal/workloads"
)

// The `-pair uarch` sweep is the timing-level analogue of the refmodel
// differential: the event-driven engine (internal/uarch/event) is run
// against the legacy core loop over a grid of workloads and LLC
// policies, and the two executions must agree byte-for-byte — LLC access
// stream, victim sequence, and Result. The seed dimension shifts the
// capture window into the workload's instruction stream so different
// seeds exercise different program phases.

var uarchWorkloads = []string{"429.mcf", "470.lbm", "483.xalancbmk"}

var uarchPolicies = []string{
	"lru", "random", "srrip", "brrip", "drrip", "ship", "ship++", "hawkeye",
}

func runUarchSweep(workloadFilter string, seeds, n int, noShrink, verbose bool) int {
	benches := uarchWorkloads
	if workloadFilter != "" {
		benches = []string{workloadFilter}
	}
	cells := 0
	for _, bench := range benches {
		spec, err := workloads.ByName(bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "check: %v\n", err)
			return 2
		}
		gen := workloads.New(spec)
		for seed := 0; seed < seeds; seed++ {
			// Consecutive windows of the stream: seed k checks
			// instructions [k*n, (k+1)*n).
			ins := make([]trace.Instr, n)
			for i := range ins {
				ins[i] = gen.Next()
			}
			warmup := uint64(n / 5)
			measure := uint64(n) - warmup
			for _, pol := range uarchPolicies {
				cfg := uarch.ScaledConfig(1, 8)
				if verbose {
					fmt.Printf("check: uarch / %s / %s / seed %d (%d instrs)\n",
						bench, pol, seed, n)
				}
				d := event.CrossCheck(cfg, pol, ins, warmup, measure)
				cells++
				if d == nil {
					continue
				}
				fmt.Fprintf(os.Stderr,
					"check: DIVERGENCE pair=uarch workload=%s policy=%s seed=%d\n",
					bench, pol, seed)
				if !noShrink {
					fmt.Fprintf(os.Stderr, "check: shrinking %d-instruction stream...\n", len(ins))
					ins = event.Shrink(cfg, pol, ins, warmup, measure)
					d = event.CrossCheck(cfg, pol, ins, warmup, measure)
				}
				fmt.Fprintf(os.Stderr, "check: %d instructions, first divergence: %s\n", len(ins), d)
				return 1
			}
		}
	}
	fmt.Printf("check: ok — uarch event-vs-legacy, %d workloads x %d policies x %d seeds = %d cells, no divergence\n",
		len(benches), len(uarchPolicies), seeds, cells)
	return 0
}
