// Command check runs the differential correctness sweep: every production
// policy that has a reference model (internal/refmodel) is replayed
// lock-step against that reference over a grid of cache geometries, trace
// classes, and seeds, with the simulator's invariant checker enabled. On
// the first divergence it shrinks the failing trace to a minimal
// counterexample, prints it in the replayable format, and exits nonzero.
//
//	go run ./cmd/check                 # full sweep (what `make check` runs)
//	go run ./cmd/check -pair drrip     # one policy only
//	go run ./cmd/check -seeds 32 -n 10000
//	go run ./cmd/check -replay ce.txt  # re-run a saved counterexample
//
// The special pair "uarch" instead runs the timing-level differential:
// the event-driven engine against the legacy core loop, byte-for-byte
// (see cmd/check/uarch.go). -class then selects a workload, and -seeds
// shifts the capture window through the instruction stream.
//
//	go run ./cmd/check -pair uarch -class 429.mcf -seeds 4 -n 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cache"
	"repro/internal/refmodel"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 8, "seeds per (pair, geometry, class) cell")
		n        = flag.Int("n", 3000, "accesses per trace (Belady pairs are capped internally)")
		pairName = flag.String("pair", "", "run only this pair (default: all)")
		class    = flag.String("class", "", "run only this trace class (default: all)")
		replay   = flag.String("replay", "", "replay a saved counterexample file instead of sweeping")
		noShrink = flag.Bool("noshrink", false, "print the raw divergence without minimizing")
		verbose  = flag.Bool("v", false, "print every cell as it runs")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay, *noShrink))
	}
	if *pairName == "uarch" {
		os.Exit(runUarchSweep(*class, *seeds, *n, *noShrink, *verbose))
	}
	os.Exit(runSweep(*pairName, *class, *seeds, *n, *noShrink, *verbose))
}

// geometries is the sweep's cache-shape grid: the degenerate single- and
// two-set caches that DRRIP's leader placement used to collapse on, small
// high-conflict shapes, and one production-like shape.
var geometries = []cache.Config{
	{Sets: 1, Ways: 2, LineSize: 64},
	{Sets: 2, Ways: 2, LineSize: 64},
	{Sets: 4, Ways: 4, LineSize: 64},
	{Sets: 16, Ways: 4, LineSize: 64},
	{Sets: 64, Ways: 8, LineSize: 64},
}

func runSweep(pairFilter, classFilter string, seeds, n int, noShrink, verbose bool) int {
	pairs := refmodel.Pairs()
	if pairFilter != "" {
		p, ok := refmodel.PairByName(pairFilter)
		if !ok {
			names := make([]string, len(pairs))
			for i, q := range pairs {
				names[i] = q.Name
			}
			fmt.Fprintf(os.Stderr, "check: unknown pair %q (known: %s)\n",
				pairFilter, strings.Join(names, ", "))
			return 2
		}
		pairs = []refmodel.Pair{p}
	}
	classes := refmodel.Classes()
	if classFilter != "" {
		kept := classes[:0]
		for _, c := range classes {
			if c.Name == classFilter {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "check: unknown trace class %q\n", classFilter)
			return 2
		}
		classes = kept
	}

	cells := 0
	for _, pair := range pairs {
		for _, cls := range classes {
			for _, cfg := range geometries {
				for seed := 0; seed < seeds; seed++ {
					tr := cls.Gen(uint64(seed), n)
					if verbose {
						fmt.Printf("check: %s / %s / %dx%d / seed %d (%d accesses)\n",
							pair.Name, cls.Name, cfg.Sets, cfg.Ways, seed, len(tr))
					}
					d := refmodel.Diff(pair, cfg, tr)
					cells++
					if d == nil {
						continue
					}
					fmt.Fprintf(os.Stderr,
						"check: DIVERGENCE pair=%s class=%s geometry=%dx%d seed=%d\n",
						pair.Name, cls.Name, cfg.Sets, cfg.Ways, seed)
					if !noShrink {
						fmt.Fprintf(os.Stderr, "check: shrinking %d-access trace...\n", len(d.Accesses))
						d = refmodel.Shrink(pair, d)
					}
					fmt.Fprint(os.Stderr, d.String())
					fmt.Fprintln(os.Stderr,
						"check: save the lines above and re-run with -replay FILE to reproduce")
					return 1
				}
			}
		}
	}
	fmt.Printf("check: ok — %d pairs x %d classes x %d geometries x %d seeds = %d cells, no divergence\n",
		len(pairs), len(classes), len(geometries), seeds, cells)
	return 0
}

func runReplay(path string, noShrink bool) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "check: %v\n", err)
		return 2
	}
	defer f.Close()
	ce, err := refmodel.ParseCounterexample(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "check: parsing %s: %v\n", path, err)
		return 2
	}
	pair, ok := refmodel.PairByName(ce.Pair)
	if !ok {
		fmt.Fprintf(os.Stderr, "check: counterexample names unknown pair %q\n", ce.Pair)
		return 2
	}
	d := refmodel.Diff(pair, ce.Cfg, ce.Accesses)
	if d == nil {
		fmt.Printf("check: %s replays clean — %d accesses of %s on %dx%d agree\n",
			path, len(ce.Accesses), ce.Pair, ce.Cfg.Sets, ce.Cfg.Ways)
		return 0
	}
	if !noShrink {
		d = refmodel.Shrink(pair, d)
	}
	fmt.Fprint(os.Stderr, d.String())
	return 1
}
