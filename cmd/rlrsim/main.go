// Command rlrsim runs either simulator over one workload under one or
// more replacement policies and prints the outcome.
//
// Usage:
//
//	rlrsim -workload 429.mcf -policy rlr                 # timing run (IPC)
//	rlrsim -workload 429.mcf -policy rlr,lru,ship        # compare policies in parallel
//	rlrsim -workload 429.mcf -policy rlr -llc -n 200000  # LLC-only (hit rate)
//	rlrsim -trace mcf.llc -policy belady                 # replay a trace file
//	rlrsim -workload 429.mcf -policy rlr -llc \
//	    -obs-trace jsonl:events.jsonl                    # stream cache events
//
// With a comma-separated -policy list the runs fan out over the bounded
// worker pool (internal/sched) and print in list order.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/cachesim"
	_ "repro/internal/core" // registers rlr / rlr-unopt / rlr-mc
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/profiling"
	"repro/internal/rl"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	var (
		name     = flag.String("workload", "", "workload name (see tracegen -list)")
		traceF   = flag.String("trace", "", "LLC access trace file to replay (overrides -workload)")
		polList  = flag.String("policy", "rlr", "replacement policy, or a comma-separated list (with -llc/-trace also: belady, rl, rl-int8)")
		llc      = flag.Bool("llc", false, "run the LLC-only simulator instead of the timing model")
		n        = flag.Int("n", 200_000, "LLC accesses (-llc)")
		warmup   = flag.Uint64("warmup", 200_000, "warmup instructions (timing mode)")
		measure  = flag.Uint64("measure", 1_000_000, "measured instructions (timing mode)")
		jobs     = flag.Int("jobs", 0, "worker-pool size for multi-policy runs (0 = GOMAXPROCS)")
		rlEpochs = flag.Int("rl-epochs", 1, "training epochs for the rl/rl-int8 policies (-llc/-trace)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		traceSpec = flag.String("obs-trace", "", "cache-event trace sink: jsonl:PATH, ring:N, or discard (optional @N sampling)")
		obsAddr   = flag.String("obs-addr", "", "serve live metrics/expvar/pprof on this address")
	)
	flag.Parse()
	sched.SetWorkers(*jobs)

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *traceSpec != "" || *obsAddr != "" {
		obs.Enable()
	}
	var ring *obs.RingSink
	if *traceSpec != "" {
		sink, sample, err := obs.OpenSink(*traceSpec)
		if err != nil {
			fail(err)
		}
		defer sink.Close()
		ring, _ = sink.(*obs.RingSink)
		obs.SetGlobalHook(obs.NewSinkHook(sink, sample))
	}
	bound, obsShutdown, err := obs.Serve(*obsAddr, ring)
	if err != nil {
		fail(err)
	}
	defer obsShutdown()
	if bound != "" {
		fmt.Fprintf(os.Stderr, "[observability endpoint: http://%s]\n", bound)
	}
	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()
	defer stopCPU()
	polNames := strings.Split(*polList, ",")

	if *traceF != "" || *llc {
		var accesses []trace.Access
		if *traceF != "" {
			f, err := os.Open(*traceF)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			r, err := trace.NewAccessReader(f)
			if err != nil {
				fail(err)
			}
			if accesses, err = r.ReadAll(); err != nil {
				fail(err)
			}
		} else {
			s := experiments.FullScale()
			s.TraceLen = *n
			var err error
			if accesses, err = experiments.CaptureLLCTrace(*name, s); err != nil {
				fail(err)
			}
		}
		cfg := uarch.DefaultConfig(1).LLC
		// The RL policies need a trained agent; train once on the shared
		// trace, then give each requesting row its own copy of the model
		// (rows run concurrently and the agent is stateful).
		var rlOnce sync.Once
		var rlModel []byte
		var rlErr error
		rlAgent := func() (*rl.Agent, error) {
			rlOnce.Do(func() {
				opts := rl.DefaultTrainOptions()
				opts.Epochs = *rlEpochs
				trained := rl.Train(cfg, accesses, opts)
				var buf bytes.Buffer
				if rlErr = trained.SaveModel(&buf); rlErr == nil {
					rlModel = buf.Bytes()
				}
			})
			if rlErr != nil {
				return nil, rlErr
			}
			agent := rl.NewAgent(rl.DefaultTrainOptions().Agent)
			agent.Init(policy.Config{Config: cfg, NumCores: 1})
			if err := agent.LoadModel(bytes.NewReader(rlModel)); err != nil {
				return nil, err
			}
			return agent, nil
		}
		// Each policy replays the shared captured trace independently;
		// rows stream out in list order.
		err = sched.Stream(len(polNames),
			func(i int) (cachesim.Stats, error) {
				pn := strings.TrimSpace(polNames[i])
				var pol policy.Policy
				switch pn {
				case "belady":
					pol = policy.NewBelady(policy.NewOracle(accesses, cfg.LineSize))
				case "belady-bypass":
					pol = policy.NewBeladyBypass(policy.NewOracle(accesses, cfg.LineSize))
				case "rl", "rl-int8":
					agent, err := rlAgent()
					if err != nil {
						return cachesim.Stats{}, err
					}
					agent.SetTraining(false)
					var p policy.Policy = agent
					if h := obs.GlobalHook(); h != nil {
						p = policy.NewTraced(p, h)
					}
					sim := cachesim.New(cfg, 1, p)
					agent.SetSim(sim)
					if pn == "rl-int8" {
						// Frozen int8 inference: evaluation-only, gated by
						// the experiments quantgate accuracy check. Must be
						// set after cachesim.New (Init clears the copy).
						agent.SetInt8(true)
					}
					return sim.Run(accesses), nil
				default:
					var err error
					if pol, err = policy.New(pn); err != nil {
						return cachesim.Stats{}, err
					}
				}
				// With tracing on, wrap the policy so victim *decisions*
				// (with the chosen line's features) land on the stream
				// alongside the simulator's hit/miss/fill/evict events.
				if h := obs.GlobalHook(); h != nil {
					pol = policy.NewTraced(pol, h)
				}
				return cachesim.RunPolicy(cfg, pol, accesses), nil
			},
			func(i int, st cachesim.Stats) error {
				fmt.Printf("policy=%s accesses=%d hits=%d (%.2f%%) demand-hit-rate=%.2f%% evictions=%d bypasses=%d\n",
					strings.TrimSpace(polNames[i]), st.Accesses, st.Hits, st.HitRate(), st.DemandHitRate(), st.Evictions, st.Bypasses)
				return nil
			})
		if err != nil {
			fail(err)
		}
		return
	}

	spec, err := workloads.ByName(*name)
	if err != nil {
		fail(err)
	}
	err = sched.Stream(len(polNames),
		func(i int) (uarch.Result, error) {
			pol, err := policy.New(strings.TrimSpace(polNames[i]))
			if err != nil {
				return uarch.Result{}, err
			}
			sys := uarch.NewSystem(uarch.DefaultConfig(1), pol)
			return sys.RunSingle(workloads.New(spec), *warmup, *measure), nil
		},
		func(i int, res uarch.Result) error {
			fmt.Printf("workload=%s policy=%s IPC=%.4f demand-MPKI=%.2f LLC-accesses=%d LLC-hits=%d\n",
				spec.Name, strings.TrimSpace(polNames[i]), res.IPC(), res.DemandMPKI, res.LLCStats.Accesses, res.LLCStats.Hits)
			return nil
		})
	if err != nil {
		fail(err)
	}
}
