// Command rlrsim runs either simulator over one workload under one
// replacement policy and prints the outcome.
//
// Usage:
//
//	rlrsim -workload 429.mcf -policy rlr                 # timing run (IPC)
//	rlrsim -workload 429.mcf -policy rlr -llc -n 200000  # LLC-only (hit rate)
//	rlrsim -trace mcf.llc -policy belady                 # replay a trace file
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cachesim"
	_ "repro/internal/core" // registers rlr / rlr-unopt / rlr-mc
	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	var (
		name    = flag.String("workload", "", "workload name (see tracegen -list)")
		traceF  = flag.String("trace", "", "LLC access trace file to replay (overrides -workload)")
		polName = flag.String("policy", "rlr", "replacement policy (or 'belady' with -llc/-trace)")
		llc     = flag.Bool("llc", false, "run the LLC-only simulator instead of the timing model")
		n       = flag.Int("n", 200_000, "LLC accesses (-llc) ")
		warmup  = flag.Uint64("warmup", 200_000, "warmup instructions (timing mode)")
		measure = flag.Uint64("measure", 1_000_000, "measured instructions (timing mode)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *traceF != "" || *llc {
		var accesses []trace.Access
		if *traceF != "" {
			f, err := os.Open(*traceF)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			r, err := trace.NewAccessReader(f)
			if err != nil {
				fail(err)
			}
			if accesses, err = r.ReadAll(); err != nil {
				fail(err)
			}
		} else {
			s := experiments.FullScale()
			s.TraceLen = *n
			var err error
			if accesses, err = experiments.CaptureLLCTrace(*name, s); err != nil {
				fail(err)
			}
		}
		cfg := uarch.DefaultConfig(1).LLC
		var pol policy.Policy
		if *polName == "belady" || *polName == "belady-bypass" {
			oracle := policy.NewOracle(accesses, cfg.LineSize)
			if *polName == "belady" {
				pol = policy.NewBelady(oracle)
			} else {
				pol = policy.NewBeladyBypass(oracle)
			}
		} else {
			var err error
			if pol, err = policy.New(*polName); err != nil {
				fail(err)
			}
		}
		st := cachesim.RunPolicy(cfg, pol, accesses)
		fmt.Printf("policy=%s accesses=%d hits=%d (%.2f%%) demand-hit-rate=%.2f%% evictions=%d bypasses=%d\n",
			pol.Name(), st.Accesses, st.Hits, st.HitRate(), st.DemandHitRate(), st.Evictions, st.Bypasses)
		return
	}

	spec, err := workloads.ByName(*name)
	if err != nil {
		fail(err)
	}
	pol, err := policy.New(*polName)
	if err != nil {
		fail(err)
	}
	sys := uarch.NewSystem(uarch.DefaultConfig(1), pol)
	res := sys.RunSingle(workloads.New(spec), *warmup, *measure)
	fmt.Printf("workload=%s policy=%s IPC=%.4f demand-MPKI=%.2f LLC-accesses=%d LLC-hits=%d\n",
		spec.Name, pol.Name(), res.IPC(), res.DemandMPKI, res.LLCStats.Accesses, res.LLCStats.Hits)
}
