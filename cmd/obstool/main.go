// Command obstool inspects the observability layer's artifacts and live
// endpoints: run manifests (rltrain -manifest), cache-event traces
// (-trace / -obs-trace jsonl sinks), and a running rlcached's telemetry.
//
// Usage:
//
//	obstool validate run.jsonl          # strict-parse a manifest, print record counts
//	obstool validate -events ev.jsonl   # same for a cache-event trace
//	obstool curve run.jsonl             # ASCII training loss curve per epoch
//	obstool curve -metric hit_rate run.jsonl
//	obstool top -addr http://127.0.0.1:8940          # live server dashboard
//	obstool top -addr http://127.0.0.1:8940 -once    # one frame (scripts/CI)
//
// validate exits non-zero on a malformed or empty file — the `make
// obs-smoke` CI gate. curve renders the per-epoch trajectory of one
// manifest metric (loss, mean_reward, hit_rate, weight_norm) as a bar
// chart, the quick look at "is training converging" that otherwise needs a
// plotting stack. top polls /stats, /window, and /topkeys and redraws a
// terminal dashboard every -interval: rolling hit rate, QPS, eviction
// rate, latency quantiles per shard, and the heavy-hitter keys.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/viz"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "validate":
		err = validate(args)
	case "curve":
		err = curve(args)
	case "top":
		err = top(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: obstool validate [-events] FILE.jsonl | obstool curve [-metric M] FILE.jsonl | obstool top [-addr URL] [-once]")
	os.Exit(2)
}

// validate strict-parses a manifest (or, with -events, a cache-event
// trace) and prints per-kind record counts. Empty or malformed files fail.
func validate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	events := fs.Bool("events", false, "validate a cache-event trace instead of a run manifest")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	counts := map[string]int{}
	total := 0
	if *events {
		evs, err := obs.ReadEvents(f)
		if err != nil {
			return err
		}
		for _, e := range evs {
			counts[e.Kind.String()]++
		}
		total = len(evs)
	} else {
		recs, err := obs.ReadManifest(f)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if r.Kind == "" {
				return fmt.Errorf("%s: record without a kind", fs.Arg(0))
			}
			counts[r.Kind]++
		}
		total = len(recs)
	}
	if total == 0 {
		return fmt.Errorf("%s: no records", fs.Arg(0))
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("%s: %d records OK\n", fs.Arg(0), total)
	for _, k := range kinds {
		fmt.Printf("  %-16s %d\n", k, counts[k])
	}
	return nil
}

// curve renders one manifest metric's per-epoch trajectory as an ASCII bar
// chart.
func curve(args []string) error {
	fs := flag.NewFlagSet("curve", flag.ExitOnError)
	metric := fs.String("metric", "loss", "epoch metric: loss, mean_reward, hit_rate, or weight_norm")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := obs.ReadManifest(f)
	if err != nil {
		return err
	}

	tbl := &stats.Table{
		Title:  fmt.Sprintf("%s per epoch (%s)", *metric, fs.Arg(0)),
		Header: []string{"Epoch", *metric},
	}
	for _, r := range recs {
		if r.Kind != obs.RecEpoch {
			continue
		}
		var v float64
		switch *metric {
		case "loss":
			v = r.Loss
		case "mean_reward":
			v = r.MeanReward
		case "hit_rate":
			v = r.HitRate
		case "weight_norm":
			v = r.WeightNorm
		default:
			return fmt.Errorf("unknown metric %q (loss, mean_reward, hit_rate, weight_norm)", *metric)
		}
		tbl.AddRow(fmt.Sprintf("%d", r.Epoch), fmt.Sprintf("%.5f", v))
	}
	if len(tbl.Rows) == 0 {
		return fmt.Errorf("%s: no epoch records (train with -manifest to produce them)", fs.Arg(0))
	}
	fmt.Println(viz.BarChart(tbl, 1))
	return nil
}
