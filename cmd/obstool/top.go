package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// top is the live terminal view over a running rlcached: it polls /stats,
// /window, and /topkeys every -interval and redraws one dashboard frame
// (ANSI home+clear between frames; -once prints a single frame and exits,
// which is what the smoke script drives).
func top(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8940", "rlcached base URL")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one frame and exit")
	rows := fs.Int("n", 8, "heavy-hitter rows to show")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}
	base := strings.TrimSuffix(*addr, "/")
	client := &http.Client{Timeout: 5 * time.Second}

	for {
		frame, err := renderFrame(client, base, *rows)
		if err != nil {
			return err
		}
		if *once {
			fmt.Print(frame)
			return nil
		}
		fmt.Print("\033[H\033[2J" + frame)
		time.Sleep(*interval)
	}
}

// fetchJSON decodes one telemetry endpoint into v.
func fetchJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("obstool: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// renderFrame builds one dashboard frame from the server's three JSON
// telemetry endpoints.
func renderFrame(client *http.Client, base string, rows int) (string, error) {
	var sn server.Snapshot
	var win server.WindowReport
	var keys server.TopKeysReport
	if err := fetchJSON(client, base+"/stats", &sn); err != nil {
		return "", err
	}
	if err := fetchJSON(client, base+"/window", &win); err != nil {
		return "", err
	}
	if err := fetchJSON(client, base+"/topkeys", &keys); err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "rlcached top — %s  policy=%s shards=%d sets=%d ways=%d mem=%dMiB  %s\n",
		base, sn.Policy, sn.Shards, sn.Sets, sn.Ways, sn.MemoryBytes>>20,
		time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "totals  gets=%d hit=%.2f%% fills=%d evictions=%d bypasses=%d entries=%d bytes=%s\n",
		sn.Totals.Gets, sn.HitRatePct(), sn.Totals.Fills,
		sn.Totals.Evictions+sn.Totals.BudgetEvictions,
		sn.Totals.AdmitBypasses+sn.Totals.PolicyBypasses,
		sn.Totals.Entries, fmtBytes(sn.Totals.Bytes))

	if !win.Enabled {
		b.WriteString("window  (disabled: start rlcached with -window)\n")
	} else {
		g := win.Global
		fmt.Fprintf(&b, "window  %.0fs of %.0fs  qps=%.0f hit=%.2f%% evict/s=%.1f  p50=%.0fus p90=%.0fus p99=%.0fus mean=%.0fus\n",
			win.CoveredSec, win.WindowSec, g.QPS, g.HitRatePct, g.EvictionsPerSec,
			g.P50Micros, g.P90Micros, g.P99Micros, g.MeanMicros)
		b.WriteString("  shard     gets    hit%      qps    evict/s   p99us\n")
		for i, s := range win.Shards {
			fmt.Fprintf(&b, "  %5d %8d %7.2f %8.0f %10.1f %7.0f\n",
				i, s.Gets, s.HitRatePct, s.QPS, s.EvictionsPerSec, s.P99Micros)
		}
	}

	if !keys.Enabled {
		b.WriteString("topkeys (disabled: start rlcached with -topk)\n")
	} else {
		b.WriteString(heavyHitters("top miss keys", keys.Misses, rows))
		b.WriteString(heavyHitters("top evicted keys", keys.Evictions, rows))
	}
	return b.String(), nil
}

// heavyHitters renders one Space-Saving list: key, count, and the
// overestimate bound (count is exact when err is 0).
func heavyHitters(title string, entries []obs.TopKEntry, rows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(entries) == 0 {
		b.WriteString("  (none yet)\n")
		return b.String()
	}
	if len(entries) > rows {
		entries = entries[:rows]
	}
	for _, e := range entries {
		if e.Err > 0 {
			fmt.Fprintf(&b, "  %-24s %10d (±%d)\n", e.Key, e.Count, e.Err)
		} else {
			fmt.Fprintf(&b, "  %-24s %10d\n", e.Key, e.Count)
		}
	}
	return b.String()
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
