// Command rltrain runs the §III pipeline end to end for one workload:
// capture an LLC trace, train the RL agent against the Belady reward,
// report the learned policy's hit rate versus LRU and Belady, print the
// Figure 3 weight heat map and the Figure 5–7 victim statistics, and
// optionally save the trained model.
//
// Long runs can checkpoint: with -checkpoint the trainer periodically
// snapshots its complete state (and saves on SIGINT/SIGTERM), and with
// -resume a restarted run continues from the snapshot, producing results
// byte-identical to an uninterrupted run.
//
// Long runs can also be observed while in flight: -manifest streams
// per-epoch telemetry (loss, mean reward, hit rate, weight norm) plus
// checkpoint save/resume events as JSONL, -trace streams per-access cache
// events to a pluggable sink, -obs-addr serves live metrics/expvar/pprof
// over HTTP, and a rate-limited one-line progress log keeps headless
// terminals informed.
//
// Usage:
//
//	rltrain -workload 429.mcf -accesses 100000 -epochs 2 -out mcf.model
//	rltrain -workload 429.mcf -checkpoint mcf.ckpt -checkpoint-every 50000
//	rltrain -workload 429.mcf -checkpoint mcf.ckpt -resume
//	rltrain -workload 429.mcf -manifest run.jsonl -obs-addr localhost:6060
//	rltrain -workload 429.mcf -trace jsonl:events.jsonl@100
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/cachesim"
	"repro/internal/checkpoint"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/profiling"
	"repro/internal/rl"
	"repro/internal/trace"
)

// ckptKind/ckptVersion identify rltrain's checkpoint payload: a run
// fingerprint followed by the trainer's serialized state.
const (
	ckptKind    = "rltrain"
	ckptVersion = 1
)

// saveCheckpoint atomically writes the trainer snapshot with the run
// fingerprint prepended, so a resume against different flags is rejected
// instead of silently producing a diverged run.
func saveCheckpoint(path, fingerprint string, t *rl.Trainer) error {
	return checkpoint.Save(path, ckptKind, ckptVersion, func(w io.Writer) error {
		if err := binary.Write(w, binary.LittleEndian, uint64(len(fingerprint))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, fingerprint); err != nil {
			return err
		}
		return t.SaveState(w)
	})
}

// loadCheckpoint restores a snapshot written by saveCheckpoint into t.
func loadCheckpoint(path, fingerprint string, t *rl.Trainer) error {
	return checkpoint.Load(path, ckptKind, ckptVersion, func(r io.Reader) error {
		var n uint64
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		if n > 4096 {
			return fmt.Errorf("implausible fingerprint length %d", n)
		}
		got := make([]byte, n)
		if _, err := io.ReadFull(r, got); err != nil {
			return err
		}
		if string(got) != fingerprint {
			return fmt.Errorf("checkpoint is for run %q, this run is %q (flags must match)", got, fingerprint)
		}
		return t.LoadState(r)
	})
}

func main() {
	var (
		name     = flag.String("workload", "429.mcf", "workload name")
		accesses = flag.Int("accesses", 100_000, "LLC accesses to train on")
		epochs   = flag.Int("epochs", 1, "training passes over the trace")
		hidden   = flag.Int("hidden", 175, "hidden-layer width")
		out      = flag.String("out", "", "write the trained model to this file")
		ckpt     = flag.String("checkpoint", "", "checkpoint file for crash-safe training")
		every    = flag.Int("checkpoint-every", 50_000, "steps between periodic checkpoints")
		resume   = flag.Bool("resume", false, "resume from -checkpoint if it exists")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		int8Eval = flag.Bool("int8-eval", false, "also evaluate the trained policy with frozen int8 inference and report the delta")
		shards   = flag.Int("shards", 0, "train N set-sharded agents in parallel instead of one agent (disables checkpointing)")

		manifestP = flag.String("manifest", "", "write a JSONL run manifest (per-epoch telemetry + checkpoint events)")
		traceSpec = flag.String("trace", "", "cache-event trace sink: jsonl:PATH, ring:N, or discard (optional @N sampling)")
		obsAddr   = flag.String("obs-addr", "", "serve live metrics/expvar/pprof on this address (e.g. localhost:6060)")
		progEvery = flag.Duration("progress", 30*time.Second, "period of the one-line progress log (0 disables)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *resume && *ckpt == "" {
		fail(errors.New("-resume requires -checkpoint"))
	}

	// Observability: enable metrics before any simulator is built, attach
	// the trace sink as the global hook, and bring up the HTTP endpoint.
	if *manifestP != "" || *traceSpec != "" || *obsAddr != "" {
		obs.Enable()
	}
	var ring *obs.RingSink
	if *traceSpec != "" {
		sink, sample, err := obs.OpenSink(*traceSpec)
		if err != nil {
			fail(err)
		}
		defer sink.Close()
		ring, _ = sink.(*obs.RingSink)
		obs.SetGlobalHook(obs.NewSinkHook(sink, sample))
	}
	bound, obsShutdown, err := obs.Serve(*obsAddr, ring)
	if err != nil {
		fail(err)
	}
	defer obsShutdown()
	if bound != "" {
		slog.Info("observability endpoint up", "addr", "http://"+bound)
	}
	manifest, err := obs.OpenManifest(*manifestP)
	if err != nil {
		fail(err)
	}
	defer manifest.Close()
	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()
	defer stopCPU()

	s := experiments.FullScale()
	s.TraceLen = *accesses
	tr, err := experiments.CaptureLLCTrace(*name, s)
	if err != nil {
		fail(err)
	}
	cfg := s.LLCConfig()
	fmt.Printf("captured %d LLC accesses for %s; training (%d epochs, %d hidden)...\n",
		len(tr), *name, *epochs, *hidden)

	opts := rl.DefaultTrainOptions()
	opts.Epochs = *epochs
	opts.Agent.Hidden = *hidden

	// Sharded parallel training is a separate, simpler pipeline: no
	// step-loop, so no checkpoint/resume (each shard trains on its private
	// sub-trace via the bounded worker pool, deterministically).
	if *shards > 0 {
		if *ckpt != "" || *resume {
			fail(errors.New("-shards does not support -checkpoint/-resume"))
		}
		sh, shardStats := rl.TrainShardedParallel(cfg, *shards, tr, opts)
		for _, st := range shardStats {
			fmt.Printf("shard %d: accesses=%d loss=%.4f mean-reward=%.3f decisions=%d batches=%d\n",
				st.Shard, st.Accesses, st.Loss, st.Reward, st.Decisions, st.Batches)
		}
		agentStats := rl.EvaluateSharded(cfg, sh, tr)
		lru := cachesim.RunPolicy(cfg, policy.MustNew("lru"), tr)
		bel := cachesim.RunPolicy(cfg, policy.NewBelady(policy.NewOracle(tr, cfg.LineSize)), tr)
		fmt.Printf("\nhit rates: LRU=%.2f%%  RL(sharded×%d)=%.2f%%  Belady=%.2f%%\n",
			lru.HitRate(), *shards, agentStats.HitRate(), bel.HitRate())
		if *int8Eval {
			q := rl.EvaluateShardedInt8(cfg, sh, tr)
			fmt.Printf("int8 eval: %.2f%% (Δ %+.3f pp vs float)\n", q.HitRate(), q.HitRate()-agentStats.HitRate())
		}
		return
	}

	// The fingerprint pins everything that shapes the run: workload and
	// trace length (the trace is re-captured deterministically), training
	// shape, and cache geometry.
	fingerprint := fmt.Sprintf("%s/%d/%d/%d/%dx%dx%d",
		*name, len(tr), *epochs, *hidden, cfg.Sets, cfg.Ways, cfg.LineSize)

	buildInfo := obs.CollectBuildInfo()
	manifest.Write(obs.ManifestRecord{
		Kind:        obs.RecRunStart,
		Fingerprint: fingerprint,
		Workload:    *name,
		Accesses:    len(tr),
		Epochs:      *epochs,
		Meta:        &buildInfo,
	})

	trainer := rl.NewTrainer(cfg, tr, opts)
	trainer.SetEpochObserver(func(e rl.EpochStats) {
		slog.Info("epoch complete", "epoch", e.Epoch, "loss", e.Loss,
			"mean_reward", e.MeanReward, "hit_rate", e.HitRate, "weight_norm", e.WeightNorm)
		if err := manifest.Write(obs.ManifestRecord{
			Kind: obs.RecEpoch, Epoch: e.Epoch, Steps: e.Steps,
			Loss: e.Loss, MeanReward: e.MeanReward, Epsilon: e.Epsilon,
			HitRate: e.HitRate, WeightNorm: e.WeightNorm,
			Decisions: e.Decisions, Batches: e.Batches,
		}); err != nil {
			slog.Warn("run manifest write failed", "err", err)
		}
	})
	if *resume {
		switch err := loadCheckpoint(*ckpt, fingerprint, trainer); {
		case err == nil:
			slog.Info("resumed from checkpoint", "path", *ckpt,
				"step", trainer.TotalSteps(), "epoch", trainer.Epoch(), "cursor", trainer.Cursor())
			manifest.Write(obs.ManifestRecord{
				Kind: obs.RecResume, Path: *ckpt,
				Epoch: trainer.Epoch(), Steps: trainer.TotalSteps(),
			})
		case errors.Is(err, fs.ErrNotExist):
			fmt.Printf("no checkpoint at %s; starting fresh\n", *ckpt)
		default:
			fail(fmt.Errorf("resuming from %s: %w", *ckpt, err))
		}
	}

	// Train step by step so we can checkpoint between steps and save on
	// SIGINT/SIGTERM instead of losing the run.
	sigC := make(chan os.Signal, 1)
	if *ckpt != "" {
		signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	}
	progress := obs.NewProgress(*progEvery)
	totalSteps := uint64(*epochs) * uint64(len(tr))
	interrupted := false
	for !trainer.Done() && !interrupted {
		trainer.Step()
		progress.Tick("training", "step", trainer.TotalSteps(), "of", totalSteps,
			"epoch", trainer.Epoch(), "pct", fmt.Sprintf("%.1f", 100*float64(trainer.TotalSteps())/float64(max(totalSteps, 1))))
		if *ckpt != "" && *every > 0 && trainer.TotalSteps()%uint64(*every) == 0 {
			if err := saveCheckpoint(*ckpt, fingerprint, trainer); err != nil {
				fail(fmt.Errorf("checkpointing: %w", err))
			}
			slog.Info("checkpoint saved", "path", *ckpt, "step", trainer.TotalSteps())
			manifest.Write(obs.ManifestRecord{
				Kind: obs.RecCheckpointSave, Path: *ckpt,
				Epoch: trainer.Epoch(), Steps: trainer.TotalSteps(),
			})
		}
		select {
		case <-sigC:
			interrupted = true
		default:
		}
	}
	if interrupted {
		if err := saveCheckpoint(*ckpt, fingerprint, trainer); err != nil {
			fail(fmt.Errorf("saving interrupt checkpoint: %w", err))
		}
		slog.Info("checkpoint saved on interrupt", "path", *ckpt, "step", trainer.TotalSteps())
		manifest.Write(obs.ManifestRecord{
			Kind: obs.RecCheckpointSave, Path: *ckpt,
			Epoch: trainer.Epoch(), Steps: trainer.TotalSteps(),
		})
		manifest.Write(obs.ManifestRecord{Kind: obs.RecRunEnd, Steps: trainer.TotalSteps(), Err: "interrupted"})
		fmt.Fprintf(os.Stderr, "\ninterrupted at step %d; state saved to %s — rerun with -resume to continue\n",
			trainer.TotalSteps(), *ckpt)
		os.Exit(130)
	}
	agent := trainer.Finish()

	agentStats := rl.Evaluate(cfg, agent, tr)
	lru := cachesim.RunPolicy(cfg, policy.MustNew("lru"), tr)
	oracle := policy.NewOracle(tr, cfg.LineSize)
	bel := cachesim.RunPolicy(cfg, policy.NewBelady(oracle), tr)
	fmt.Printf("\nhit rates: LRU=%.2f%%  RL=%.2f%%  Belady=%.2f%%\n\n",
		lru.HitRate(), agentStats.HitRate(), bel.HitRate())
	if *int8Eval {
		q := rl.EvaluateInt8(cfg, agent, tr)
		fmt.Printf("int8 eval: %.2f%% (Δ %+.3f pp vs float)\n\n", q.HitRate(), q.HitRate()-agentStats.HitRate())
	}
	manifest.Write(obs.ManifestRecord{
		Kind: obs.RecRunEnd, Epoch: trainer.Epoch(), Steps: trainer.TotalSteps(),
		HitRate: agentStats.HitRate(), WeightNorm: agent.WeightNorm(),
	})

	fmt.Println("Feature importance (mean |input weight|, Figure 3):")
	for _, row := range analysis.HeatMap(agent) {
		fmt.Printf("  %-28s %.5f\n", row.Feature, row.Weight)
	}

	st := analysis.CollectVictimStats(cfg, agent, tr)
	fmt.Printf("\nVictim statistics over %d evictions:\n", st.Victims)
	fmt.Printf("  avg victim age by type (Fig 5): LD=%.1f RFO=%.1f PF=%.1f WB=%.1f\n",
		st.AvgAgeByType[trace.Load], st.AvgAgeByType[trace.RFO],
		st.AvgAgeByType[trace.Prefetch], st.AvgAgeByType[trace.Writeback])
	fmt.Printf("  hits at eviction (Fig 6): 0=%.1f%% 1=%.1f%% >1=%.1f%%\n",
		100*st.HitsZero, 100*st.HitsOne, 100*st.HitsMore)
	fmt.Printf("  victim recency histogram (Fig 7): %v\n", fmtPct(st.RecencyPct))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := agent.SaveModel(f); err != nil {
			fail(err)
		}
		fmt.Printf("\nmodel written to %s\n", *out)
	}
}

func fmtPct(xs []float64) []string {
	out := make([]string, len(xs))
	for i, v := range xs {
		out[i] = fmt.Sprintf("%.0f", v)
	}
	return out
}
