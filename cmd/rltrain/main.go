// Command rltrain runs the §III pipeline end to end for one workload:
// capture an LLC trace, train the RL agent against the Belady reward,
// report the learned policy's hit rate versus LRU and Belady, print the
// Figure 3 weight heat map and the Figure 5–7 victim statistics, and
// optionally save the trained model.
//
// Usage:
//
//	rltrain -workload 429.mcf -accesses 100000 -epochs 2 -out mcf.model
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/cachesim"
	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/profiling"
	"repro/internal/rl"
	"repro/internal/trace"
)

func main() {
	var (
		name     = flag.String("workload", "429.mcf", "workload name")
		accesses = flag.Int("accesses", 100_000, "LLC accesses to train on")
		epochs   = flag.Int("epochs", 1, "training passes over the trace")
		hidden   = flag.Int("hidden", 175, "hidden-layer width")
		out      = flag.String("out", "", "write the trained model to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()
	defer stopCPU()

	s := experiments.FullScale()
	s.TraceLen = *accesses
	tr, err := experiments.CaptureLLCTrace(*name, s)
	if err != nil {
		fail(err)
	}
	cfg := s.LLCConfig()
	fmt.Printf("captured %d LLC accesses for %s; training (%d epochs, %d hidden)...\n",
		len(tr), *name, *epochs, *hidden)

	opts := rl.DefaultTrainOptions()
	opts.Epochs = *epochs
	opts.Agent.Hidden = *hidden
	agent := rl.Train(cfg, tr, opts)

	agentStats := rl.Evaluate(cfg, agent, tr)
	lru := cachesim.RunPolicy(cfg, policy.MustNew("lru"), tr)
	oracle := policy.NewOracle(tr, cfg.LineSize)
	bel := cachesim.RunPolicy(cfg, policy.NewBelady(oracle), tr)
	fmt.Printf("\nhit rates: LRU=%.2f%%  RL=%.2f%%  Belady=%.2f%%\n\n",
		lru.HitRate(), agentStats.HitRate(), bel.HitRate())

	fmt.Println("Feature importance (mean |input weight|, Figure 3):")
	for _, row := range analysis.HeatMap(agent) {
		fmt.Printf("  %-28s %.5f\n", row.Feature, row.Weight)
	}

	st := analysis.CollectVictimStats(cfg, agent, tr)
	fmt.Printf("\nVictim statistics over %d evictions:\n", st.Victims)
	fmt.Printf("  avg victim age by type (Fig 5): LD=%.1f RFO=%.1f PF=%.1f WB=%.1f\n",
		st.AvgAgeByType[trace.Load], st.AvgAgeByType[trace.RFO],
		st.AvgAgeByType[trace.Prefetch], st.AvgAgeByType[trace.Writeback])
	fmt.Printf("  hits at eviction (Fig 6): 0=%.1f%% 1=%.1f%% >1=%.1f%%\n",
		100*st.HitsZero, 100*st.HitsOne, 100*st.HitsMore)
	fmt.Printf("  victim recency histogram (Fig 7): %v\n", fmtPct(st.RecencyPct))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := agent.SaveModel(f); err != nil {
			fail(err)
		}
		fmt.Printf("\nmodel written to %s\n", *out)
	}
}

func fmtPct(xs []float64) []string {
	out := make([]string, len(xs))
	for i, v := range xs {
		out[i] = fmt.Sprintf("%.0f", v)
	}
	return out
}
