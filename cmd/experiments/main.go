// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig10 -scale quick
//	experiments -run all -scale full -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/viz"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		run   = flag.String("run", "", "experiment id to run, or 'all'")
		scale = flag.String("scale", "quick", "scale: quick, full, or bench")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		chart = flag.Bool("chart", false, "render ASCII charts alongside the tables")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("Available experiments:")
		for _, e := range experiments.List() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Desc)
		}
		if *run == "" {
			fmt.Println("\nRun with: experiments -run <id>|all [-scale quick|full|bench] [-csv]")
		}
		return
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "full":
		s = experiments.FullScale()
	case "bench":
		s = experiments.BenchScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick|full|bench)\n", *scale)
		os.Exit(2)
	}

	ids := []string{*run}
	if *run == "all" {
		ids = ids[:0]
		for _, e := range experiments.List() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiments.Run(id, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		switch {
		case *csv:
			fmt.Printf("# %s\n%s\n", id, tbl.CSV())
		case *chart && id == "fig3":
			fmt.Println(viz.HeatMap(tbl))
		case *chart && len(tbl.Header) > 2:
			fmt.Println(tbl.String())
			fmt.Println(viz.BarChart(tbl, len(tbl.Header)-1))
		case *chart:
			fmt.Println(viz.BarChart(tbl, 1))
		default:
			fmt.Println(tbl.String())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v at scale %s]\n\n", id, time.Since(start).Round(time.Millisecond), s.Name)
	}
}
