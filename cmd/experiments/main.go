// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig10 -scale quick
//	experiments -run all -scale full -csv
//	experiments -run all -scale quick -jobs 8
//	experiments -run all -scale full -obs-addr localhost:6060 -trace ring:4096
//
// Experiments fan out over a bounded worker pool (internal/sched): each
// one runs its (workload × policy) grid in parallel, and with -run all
// the experiments themselves also run concurrently, their tables streamed
// to stdout in paper order as they complete. Output is byte-identical at
// every -jobs setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/viz"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		run   = flag.String("run", "", "experiment id to run, or 'all'")
		scale = flag.String("scale", "quick", "scale: quick, full, or bench")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		chart = flag.Bool("chart", false, "render ASCII charts alongside the tables")
		jobs  = flag.Int("jobs", 0, "worker-pool size (0 = GOMAXPROCS); output is identical at any value")
		keep  = flag.Bool("keep-going", false, "on a failed grid cell or experiment, annotate and continue instead of aborting")
		limit = flag.Duration("timeout", 0, "per-experiment wall-clock limit (0 = none); exceeded experiments fail")

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")

		traceSpec = flag.String("trace", "", "cache-event trace sink: jsonl:PATH, ring:N, or discard (optional @N sampling)")
		obsAddr   = flag.String("obs-addr", "", "serve live metrics/expvar/pprof on this address while the suite runs")
	)
	flag.Parse()
	sched.SetWorkers(*jobs)
	experiments.SetKeepGoing(*keep)

	// Observability is opt-in and does not perturb results: tables are
	// byte-identical with tracing + metrics on or off (pinned by
	// TestObservabilityDeterminism).
	if *traceSpec != "" || *obsAddr != "" {
		obs.Enable()
	}
	var ring *obs.RingSink
	if *traceSpec != "" {
		sink, sample, err := obs.OpenSink(*traceSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer sink.Close()
		ring, _ = sink.(*obs.RingSink)
		obs.SetGlobalHook(obs.NewSinkHook(sink, sample))
	}
	bound, obsShutdown, err := obs.Serve(*obsAddr, ring)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer obsShutdown()
	if bound != "" {
		fmt.Fprintf(os.Stderr, "[observability endpoint: http://%s]\n", bound)
	}

	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()
	defer stopCPU()

	if *list || *run == "" {
		fmt.Println("Available experiments:")
		for _, e := range experiments.List() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Desc)
		}
		if *run == "" {
			fmt.Println("\nRun with: experiments -run <id>|all [-scale quick|full|bench] [-jobs N] [-csv]")
		}
		return
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "full":
		s = experiments.FullScale()
	case "bench":
		s = experiments.BenchScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick|full|bench)\n", *scale)
		os.Exit(2)
	}

	ids := []string{*run}
	if *run == "all" {
		ids = ids[:0]
		for _, e := range experiments.List() {
			ids = append(ids, e.ID)
		}
	}

	// Run every experiment concurrently on the shared pool and stream the
	// tables out in paper order as they become available. Each experiment's
	// grid fans out on the same pool, and the singleflight memo caches
	// coalesce cells shared across experiments (fig10/fig12/tab4 all reuse
	// the same timing runs), so -run all does strictly less work than
	// running the ids one by one.
	type timed struct {
		tbl     *stats.Table
		elapsed time.Duration
	}
	suiteStart := time.Now()
	runOne := func(i int) (timed, error) {
		start := time.Now()
		var tbl *stats.Table
		job := func() error {
			t, err := experiments.Run(ids[i], s)
			tbl = t
			return err
		}
		if *limit > 0 {
			// An exceeded experiment fails (its abandoned goroutine keeps
			// running; Go cannot kill it) so the rest of the suite can
			// finish under -keep-going.
			job = sched.Deadline(*limit)(job)
		}
		if err := job(); err != nil {
			return timed{}, fmt.Errorf("experiment %s: %w", ids[i], err)
		}
		return timed{tbl, time.Since(start)}, nil
	}
	emit := func(i int, r timed) error {
		id := ids[i]
		switch {
		case *csv:
			fmt.Printf("# %s\n%s\n", id, r.tbl.CSV())
		case *chart && id == "fig3":
			fmt.Println(viz.HeatMap(r.tbl))
		case *chart && len(r.tbl.Header) > 2:
			fmt.Println(r.tbl.String())
			fmt.Println(viz.BarChart(r.tbl, len(r.tbl.Header)-1))
		case *chart:
			fmt.Println(viz.BarChart(r.tbl, 1))
		default:
			fmt.Println(r.tbl.String())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v at scale %s]\n\n", id, r.elapsed.Round(time.Millisecond), s.Name)
		return nil
	}
	var failedIDs []string
	if *keep {
		// Keep-going: every experiment runs whatever happens to its
		// neighbours (a panic in one becomes that experiment's error);
		// failures are reported in order and the suite exits non-zero at
		// the end instead of aborting at the first failure.
		err = sched.StreamAll(len(ids), runOne, func(i int, r timed, jobErr error) error {
			if jobErr != nil {
				failedIDs = append(failedIDs, ids[i])
				fmt.Fprintf(os.Stderr, "[%s FAILED: %v]\n\n", ids[i], jobErr)
				return nil
			}
			return emit(i, r)
		})
	} else {
		err = sched.Stream(len(ids), runOne, emit)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(ids) > 1 {
		fmt.Fprintf(os.Stderr, "[suite: %d experiments in %v, jobs=%d]\n",
			len(ids), time.Since(suiteStart).Round(time.Millisecond), sched.Workers())
	}
	if len(failedIDs) > 0 {
		fmt.Fprintf(os.Stderr, "[%d of %d experiments failed: %v]\n", len(failedIDs), len(ids), failedIDs)
		os.Exit(1)
	}
}
