// Command cacheload replays workload traces as keyed cache requests
// against rlcached-style servers and reports throughput, latency
// percentiles, and hit rate per policy as BENCH_server.json.
//
// Usage:
//
//	cacheload                                     # lru,drrip,ship,cbr on 429.mcf
//	cacheload -policies lru,rlr -workload 470.lbm -n 100000
//	cacheload -trace mcf.llct -policies lru       # replay a chunked trace file
//	cacheload -addr http://127.0.0.1:8940 -n 5000 # drive a live server
//	cacheload -qps 20000                          # throttle the replay rate
//	cacheload -window 10s -topk 8 -span-trace jsonl:spans.jsonl@100 -policies lru
//
// Without -addr, cacheload boots one in-process server per policy on an
// ephemeral loopback port, replays the same trace against each, and folds
// the per-policy client reports plus the servers' own counters into one
// JSON report. With -addr it replays against the live server and reads
// /stats for the server-side counters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	_ "repro/internal/core" // registers rlr / rlr-unopt / rlr-mc
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// result is one policy's row: the client-side replay report flattened
// next to the policy name, plus the server's own counter snapshot.
type result struct {
	Policy string `json:"policy"`
	server.ReplayReport
	Server server.Snapshot `json:"server"`
}

type report struct {
	Meta      obs.BuildInfo `json:"meta"`
	Workload  string        `json:"workload"`
	Accesses  int           `json:"accesses"`
	QPSTarget float64       `json:"qps_target"`
	Shards    int           `json:"shards"`
	Sets      int           `json:"sets"`
	Ways      int           `json:"ways"`
	MemMB     int64         `json:"mem_mb"`
	Results   []result      `json:"results"`
}

func main() {
	var (
		policies = flag.String("policies", "lru,drrip,ship,cbr", "comma-separated policy list (in-process mode)")
		workload = flag.String("workload", "429.mcf", "workload spec to derive the request stream from")
		traceF   = flag.String("trace", "", "chunked trace file (.llct) to replay instead of -workload")
		n        = flag.Int("n", 50_000, "number of accesses to replay")
		qps      = flag.Float64("qps", 0, "target request rate (0 = full speed)")
		addr     = flag.String("addr", "", "replay against this live server instead of in-process ones")
		shards   = flag.Int("shards", 1, "in-process servers: tag shards (power of two)")
		sets     = flag.Int("sets", 1024, "in-process servers: total synthetic sets")
		ways     = flag.Int("ways", 16, "in-process servers: ways per set")
		memMB    = flag.Int64("mem-mb", 16, "in-process servers: byte budget in MiB")
		window   = flag.Duration("window", 0, "in-process servers: sliding-window metrics span (0 = off)")
		topK     = flag.Int("topk", 0, "in-process servers: heavy-hitter keys per shard (0 = off)")
		spanSpec = flag.String("span-trace", "", "in-process servers: sample request spans into this sink (jsonl:PATH[@N], ring:N[@M], discard[@N])")
		out      = flag.String("o", "BENCH_server.json", "output file ('-' for stdout)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	accs, src, err := loadAccesses(*traceF, *workload, *n)
	if err != nil {
		fail(err)
	}

	rep := report{
		Meta:      obs.CollectBuildInfo(),
		Workload:  src,
		Accesses:  len(accs),
		QPSTarget: *qps,
		Shards:    *shards,
		Sets:      *sets,
		Ways:      *ways,
		MemMB:     *memMB,
	}

	if *addr != "" {
		res, err := replayLive(*addr, accs, *qps)
		if err != nil {
			fail(err)
		}
		rep.Shards, rep.Sets, rep.Ways = res.Server.Shards, res.Server.Sets, res.Server.Ways
		rep.MemMB = res.Server.MemoryBytes >> 20
		rep.Results = append(rep.Results, res)
	} else {
		for _, pol := range strings.Split(*policies, ",") {
			pol = strings.TrimSpace(pol)
			if pol == "" {
				continue
			}
			res, err := replayInProcess(pol, accs, *qps, *shards, *sets, *ways, *memMB,
				*window, *topK, *spanSpec)
			if err != nil {
				fail(fmt.Errorf("policy %s: %w", pol, err))
			}
			fmt.Printf("cacheload: %-8s hit_rate=%6.2f%% qps=%9.0f p50=%.0fus p99=%.0fus p999=%.0fus max=%.0fus evictions=%d\n",
				pol, res.HitRatePct, res.QPS, res.P50Micros, res.P99Micros,
				res.P999Micros, res.MaxMicros,
				res.Server.Totals.Evictions+res.Server.Totals.BudgetEvictions)
			rep.Results = append(rep.Results, res)
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("cacheload: wrote %s (%d policies, %d accesses)\n", *out, len(rep.Results), len(accs))
}

// loadAccesses materializes the request stream: the first n records of a
// chunked trace file, or the workload's derived LLC access stream.
func loadAccesses(traceF, workload string, n int) ([]trace.Access, string, error) {
	if traceF == "" {
		spec, err := workloads.ByName(workload)
		if err != nil {
			return nil, "", err
		}
		return workloads.LLCAccesses(spec, n), workload, nil
	}
	cf, err := trace.OpenChunked(traceF)
	if err != nil {
		return nil, "", err
	}
	defer cf.Close()
	var accs []trace.Access
	var fb []trace.Access
	for i := 0; i < cf.Frames() && len(accs) < n; i++ {
		if fb, err = cf.ReadFrameAt(i, fb); err != nil {
			return nil, "", err
		}
		accs = append(accs, fb...)
	}
	if len(accs) > n {
		accs = accs[:n]
	}
	return accs, traceF, nil
}

// replayInProcess boots a server with the given policy on an ephemeral
// loopback port, replays the trace over real TCP, and folds the client
// report with the server's counters. The telemetry knobs mirror rlcached's
// -window/-topk/-span-trace; the span sink is opened fresh per policy, so
// a jsonl: path holds the last policy's spans — use one -policies entry
// (or a ring sink) when span output matters.
func replayInProcess(pol string, accs []trace.Access, qps float64, shards, sets, ways int, memMB int64,
	window time.Duration, topK int, spanSpec string) (result, error) {
	tel := server.TelemetryConfig{Window: window, TopK: topK}
	if spanSpec != "" {
		sink, ring, sample, err := obs.OpenSpanSink(spanSpec)
		if err != nil {
			return result{}, err
		}
		tel.Spans = obs.NewSpanTracer(sink, sample)
		tel.SpanRing = ring
		defer tel.Spans.Close()
	}
	srv, err := server.New(server.Config{
		Policy:      pol,
		Shards:      shards,
		Sets:        sets,
		Ways:        ways,
		MemoryBytes: memMB << 20,
		Telemetry:   tel,
	})
	if err != nil {
		return result{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return result{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	cr, err := server.Replay(accs, server.ReplayOptions{
		BaseURL: "http://" + ln.Addr().String(),
		QPS:     qps,
	})
	if err != nil {
		return result{}, err
	}
	return result{Policy: pol, ReplayReport: cr, Server: srv.Snapshot()}, nil
}

// replayLive replays against a running server and pulls /stats for the
// server-side counters (diffed around the run, so a warm server reports
// only this replay's activity in the client row; the snapshot itself is
// cumulative).
func replayLive(base string, accs []trace.Access, qps float64) (result, error) {
	base = strings.TrimSuffix(base, "/")
	cr, err := server.Replay(accs, server.ReplayOptions{BaseURL: base, QPS: qps})
	if err != nil {
		return result{}, err
	}
	sn, err := fetchStats(base)
	if err != nil {
		return result{}, err
	}
	return result{Policy: sn.Policy, ReplayReport: cr, Server: sn}, nil
}

func fetchStats(base string) (server.Snapshot, error) {
	var sn server.Snapshot
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return sn, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sn, fmt.Errorf("cacheload: GET /stats: status %d", resp.StatusCode)
	}
	return sn, json.NewDecoder(resp.Body).Decode(&sn)
}
