package main

import (
	"fmt"

	"repro/internal/trace"
)

// statChunked prints a summary of a chunked LLC trace: frames, accesses,
// per-type counts, and unique blocks at the given line size. It streams
// frame by frame, so memory stays O(frame + unique blocks) however large
// the trace is.
func statChunked(path string, lineSize uint64) error {
	if lineSize == 0 || lineSize&(lineSize-1) != 0 {
		return fmt.Errorf("tracegen: -line must be a power of two, got %d", lineSize)
	}
	cf, err := trace.OpenChunked(path)
	if err != nil {
		return err
	}
	defer cf.Close()

	shift := 0
	for l := lineSize; l > 1; l >>= 1 {
		shift++
	}
	blocks := make(map[uint64]struct{})
	var byType [trace.NumAccessTypes]uint64
	var buf []trace.Access
	for i := 0; i < cf.Frames(); i++ {
		buf, err = cf.ReadFrameAt(i, buf)
		if err != nil {
			return err
		}
		for _, a := range buf {
			blocks[a.Addr>>shift] = struct{}{}
			byType[a.Type]++
		}
	}
	fmt.Printf("frames:        %d\n", cf.Frames())
	fmt.Printf("accesses:      %d\n", cf.NumAccesses())
	for t := trace.AccessType(0); t < trace.NumAccessTypes; t++ {
		if byType[t] > 0 {
			fmt.Printf("  %-11s  %d\n", t.String()+":", byType[t])
		}
	}
	fmt.Printf("unique blocks: %d (line size %d)\n", len(blocks), lineSize)
	return nil
}
