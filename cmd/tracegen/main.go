// Command tracegen materializes traces from the synthetic workload suite:
// either instruction traces (for the timing simulator) or LLC access traces
// (the §III-A ⟨PC, type, address⟩ records, captured from a timing run with
// an LRU LLC).
//
// Usage:
//
//	tracegen -list
//	tracegen -workload 429.mcf -n 1000000 -o mcf.instr
//	tracegen -workload 429.mcf -llc -n 200000 -o mcf.llc
//	tracegen -workload 429.mcf -llc -chunked -compress -o mcf.llct
//	tracegen -stat mcf.llct
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list workloads")
		name     = flag.String("workload", "", "workload name")
		n        = flag.Int("n", 1_000_000, "records to generate (instructions, or LLC accesses with -llc)")
		out      = flag.String("o", "", "output file (default stdout)")
		llc      = flag.Bool("llc", false, "capture an LLC access trace instead of an instruction trace")
		chunked  = flag.Bool("chunked", false, "with -llc: write the seekable chunked container instead of the flat stream")
		compress = flag.Bool("compress", false, "with -chunked: flate-compress frame payloads")
		frame    = flag.Int("frame", 0, "with -chunked: accesses per frame (0 = default)")
		stat     = flag.String("stat", "", "print frame count, accesses, and unique blocks of a chunked trace, then exit")
		line     = flag.Uint64("line", 64, "with -stat: cache line size for unique-block counting")
	)
	flag.Parse()

	if *stat != "" {
		if err := statChunked(*stat, *line); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *list {
		fmt.Println("SPEC CPU 2006-like workloads:")
		for _, w := range workloads.SPECNames() {
			fmt.Println("  " + w)
		}
		fmt.Println("CloudSuite-like workloads:")
		for _, w := range workloads.CloudNames() {
			fmt.Println("  " + w)
		}
		return
	}
	spec, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var w *os.File = os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer w.Close()
	}

	if *llc {
		sys := uarch.NewSystem(uarch.DefaultConfig(1), policy.MustNew("lru"))
		var write func(trace.Access) error
		var finish func() error
		if *chunked {
			opts := trace.ChunkedWriterOptions{FrameAccesses: *frame}
			if *compress {
				opts.Codec = trace.CodecFlate
			}
			cw := trace.NewChunkedWriter(w, opts)
			write, finish = cw.Write, cw.Close
		} else {
			aw := trace.NewAccessWriter(w)
			write, finish = aw.Write, aw.Flush
		}
		captured := 0
		sys.Hierarchy().SetLLCObserver(func(a trace.Access, hit bool) {
			if captured < *n {
				if err := write(a); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				captured++
			}
		})
		gen := workloads.New(spec)
		for captured < *n {
			sys.RunSingle(gen, 0, 100_000)
		}
		if err := finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d LLC accesses for %s\n", captured, spec.Name)
		return
	}
	if *chunked {
		fmt.Fprintln(os.Stderr, "-chunked requires -llc (the chunked container holds LLC access records)")
		os.Exit(2)
	}

	iw := trace.NewInstrWriter(w)
	gen := workloads.New(spec)
	for i := 0; i < *n; i++ {
		if err := iw.Write(gen.Next()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := iw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d instructions for %s\n", *n, spec.Name)
}
