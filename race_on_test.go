//go:build race

package repro

// raceEnabled reports whether the race detector is compiled in; timing
// smokes skip themselves under its instrumentation overhead.
const raceEnabled = true
