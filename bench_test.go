// bench_test.go regenerates every table and figure of the paper as a Go
// benchmark, one testing.B per experiment (see DESIGN.md's experiment
// index). Each iteration executes the complete experiment at BenchScale —
// a reduced instruction/trace budget that preserves the comparisons. Run
//
//	go test -bench=. -benchmem
//
// and use cmd/experiments -scale full for the paper-scale numbers. The
// BenchmarkCold* pairs at the bottom time cold (memo-cleared) runs at
// jobs=1 versus jobs=NumCPU to track the parallel engine's speedup;
// cmd/benchjson emits the same comparison as BENCH_parallel.json.
package repro

import (
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/stats"
)

// runExperiment executes one experiment b.N times, reporting the table's
// row count as a sanity metric. Traces and trained agents are memoized
// across benchmarks within the process, as they are in the harness binary.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	s := experiments.BenchScale()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiments.Run(id, s)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
	if tbl == nil || len(tbl.Rows) == 0 {
		b.Fatalf("experiment %s produced an empty table", id)
	}
	b.ReportMetric(float64(len(tbl.Rows)), "rows")
}

// BenchmarkTable1Overhead regenerates Table I (storage overhead).
func BenchmarkTable1Overhead(b *testing.B) { runExperiment(b, "tab1") }

// BenchmarkFigure1HitRate regenerates Figure 1 (LLC hit rate comparison,
// including the RL agent and the Belady oracle).
func BenchmarkFigure1HitRate(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFigure3Heatmap regenerates Figure 3 (NN weight heat map).
func BenchmarkFigure3Heatmap(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkHillClimb regenerates the §III-B hill-climbing feature search.
func BenchmarkHillClimb(b *testing.B) { runExperiment(b, "hillclimb") }

// BenchmarkFigure4Preuse regenerates Figure 4 (|preuse − reuse| buckets).
func BenchmarkFigure4Preuse(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5VictimAge regenerates Figure 5 (victim age by type).
func BenchmarkFigure5VictimAge(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure6HitsAtEviction regenerates Figure 6 (victim hit counts).
func BenchmarkFigure6HitsAtEviction(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7Recency regenerates Figure 7 (victim recency histogram).
func BenchmarkFigure7Recency(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFigure10SpeedupSPEC regenerates Figure 10 (single-core IPC
// speedup over LRU, SPEC CPU 2006, 29 workloads × 7 policies).
func BenchmarkFigure10SpeedupSPEC(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFigure11SpeedupCloud regenerates Figure 11 (CloudSuite).
func BenchmarkFigure11SpeedupCloud(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFigure12MPKI regenerates Figure 12 (demand MPKI).
func BenchmarkFigure12MPKI(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFigure13Multicore regenerates Figure 13 (4-core mixes).
func BenchmarkFigure13Multicore(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkTable4Summary regenerates Table IV (overall speedup summary).
func BenchmarkTable4Summary(b *testing.B) { runExperiment(b, "tab4") }

// BenchmarkAblationPriorities regenerates the §V-B hit/type ablation.
func BenchmarkAblationPriorities(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkAblationAgeBits regenerates the §IV-C age/RD design sweep.
func BenchmarkAblationAgeBits(b *testing.B) { runExperiment(b, "agesweep") }

// BenchmarkAblationAgeWeight regenerates the age-priority weight sweep.
func BenchmarkAblationAgeWeight(b *testing.B) { runExperiment(b, "weightsweep") }

// BenchmarkKPCPInteraction regenerates the §V-B KPC-P prefetcher study.
func BenchmarkKPCPInteraction(b *testing.B) { runExperiment(b, "kpcp") }

// BenchmarkMCScale regenerates the 8/16-core event-engine scaling table.
func BenchmarkMCScale(b *testing.B) { runExperiment(b, "mcscale") }

// runExperimentCold times cold runs: the memo caches are cleared every
// iteration so the full (workload × policy) grid executes, on the given
// worker count. The Jobs1/JobsMax pairs measure the parallel engine.
func runExperimentCold(b *testing.B, id string, workers int) {
	b.Helper()
	sched.SetWorkers(workers)
	defer sched.SetWorkers(0)
	s := experiments.BenchScale()
	for i := 0; i < b.N; i++ {
		experiments.ResetCaches()
		if _, err := experiments.Run(id, s); err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
}

// BenchmarkColdFig10Jobs1 regenerates Figure 10 serially from cold caches.
func BenchmarkColdFig10Jobs1(b *testing.B) { runExperimentCold(b, "fig10", 1) }

// BenchmarkColdFig10JobsMax regenerates Figure 10 from cold caches with
// the full worker pool.
func BenchmarkColdFig10JobsMax(b *testing.B) { runExperimentCold(b, "fig10", runtime.NumCPU()) }

// BenchmarkColdFig13Jobs1 regenerates the 4-core mixes serially.
func BenchmarkColdFig13Jobs1(b *testing.B) { runExperimentCold(b, "fig13", 1) }

// BenchmarkColdFig13JobsMax regenerates the 4-core mixes on the full pool.
func BenchmarkColdFig13JobsMax(b *testing.B) { runExperimentCold(b, "fig13", runtime.NumCPU()) }
