// Package repro is a from-scratch Go reproduction of "Designing a
// Cost-Effective Cache Replacement Policy using Machine Learning"
// (Sethumurugan, Yin, Sartori — HPCA 2021): the RLR replacement policy,
// the RL framework it was derived from, every baseline policy the paper
// compares against, both of the paper's simulators, and a benchmark
// harness regenerating every table and figure.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The implementation lives under internal/; run the examples/ programs or
// the cmd/ tools to drive it.
package repro
