# Build / test / CI entry points. `make ci` is the gate the parallel
# engine must pass: vet, the full suite under the race detector (the
# sched pool and singleflight memos are exercised by every experiment
# test), and a one-iteration bench smoke over every experiment.

GO ?= go

.PHONY: build test vet race bench-smoke bench-parallel ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Regenerates BENCH_parallel.json: cold wall-clock per experiment at
# jobs=1 vs jobs=NumCPU, tracked across PRs.
bench-parallel:
	$(GO) run ./cmd/benchjson -o BENCH_parallel.json

ci: vet race bench-smoke
