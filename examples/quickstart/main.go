// Quickstart: build a 2MB 16-way LLC governed by RLR, replay a synthetic
// mcf-like workload through the full Table III hierarchy, and print the
// outcome next to LRU.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	_ "repro/internal/core" // registers the rlr policies
	"repro/internal/policy"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	spec, err := workloads.ByName("429.mcf")
	if err != nil {
		panic(err)
	}

	const warmup, measure = 100_000, 500_000
	fmt.Printf("workload %s: %d instructions after %d warmup\n\n", spec.Name, measure, warmup)

	for _, name := range []string{"lru", "rlr"} {
		pol := policy.MustNew(name)
		sys := uarch.NewSystem(uarch.DefaultConfig(1), pol)
		res := sys.RunSingle(workloads.New(spec), warmup, measure)
		st := res.LLCStats
		fmt.Printf("%-4s  IPC=%.4f  demand-MPKI=%.2f  LLC hits=%d/%d (%.1f%%)\n",
			name, res.IPC(), res.DemandMPKI, st.Hits, st.Accesses,
			100*float64(st.Hits)/float64(st.Accesses))
	}
	fmt.Println("\nRLR protects lines within their predicted reuse distance and evicts")
	fmt.Println("non-reused prefetches early; on pointer-chasing workloads that trims")
	fmt.Println("demand misses relative to LRU without any PC plumbing.")
}
