// multicore runs a 4-core shared-LLC mix (§IV-D / Figure 13): four
// different workloads on four cores over an 8MB LLC, comparing LRU against
// RLR with the per-core demand-hit priority extension.
//
//	go run ./examples/multicore
package main

import (
	"fmt"

	_ "repro/internal/core"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	mix := []string{"429.mcf", "471.omnetpp", "473.astar", "483.xalancbmk"}
	const warmup, measure = 50_000, 250_000

	run := func(polName string) []float64 {
		srcs := make([]uarch.InstrSource, len(mix))
		for i, name := range mix {
			spec, err := workloads.ByName(name)
			if err != nil {
				panic(err)
			}
			srcs[i] = workloads.New(spec)
		}
		sys := uarch.NewSystem(uarch.DefaultConfig(4), policy.MustNew(polName))
		results := sys.RunMulti(srcs, warmup, measure)
		ipcs := make([]float64, len(results))
		for i, r := range results {
			ipcs[i] = r.IPC()
		}
		return ipcs
	}

	fmt.Printf("4-core mix over an 8MB shared LLC (%d instr/core):\n  %v\n\n", measure, mix)
	base := run("lru")
	for _, pol := range []string{"drrip", "ship++", "rlr-mc"} {
		ipcs := run(pol)
		fmt.Printf("%-8s per-core IPC:", pol)
		for i := range ipcs {
			fmt.Printf("  %.3f (LRU %.3f)", ipcs[i], base[i])
		}
		if ms, err := stats.MixSpeedup(ipcs, base); err != nil {
			fmt.Printf("\n         mix speedup over LRU: n/a (%v)\n\n", err)
		} else {
			fmt.Printf("\n         mix speedup over LRU: %.2f%%\n\n", (ms-1)*100)
		}
	}
	fmt.Println("rlr-mc ranks cores by demand-hit frequency every 2000 LLC accesses")
	fmt.Println("and folds that rank into each line's eviction priority (§IV-D).")
}
