// policycompare reproduces a Figure 1-style comparison on a few workloads:
// every registered replacement policy (plus the Belady oracle) replayed
// over the same captured LLC access trace, ranked by hit rate.
//
//	go run ./examples/policycompare
package main

import (
	"fmt"
	"sort"

	"repro/internal/cachesim"
	_ "repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/policy"
)

func main() {
	// Table III geometry with a trimmed trace: the policies' relative
	// behaviour only makes sense against the real 2MB 16-way LLC.
	s := experiments.FullScale()
	s.TraceLen = 120_000
	cfg := s.LLCConfig()
	for _, bench := range []string{"429.mcf", "483.xalancbmk", "470.lbm"} {
		tr, err := experiments.CaptureLLCTrace(bench, s)
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %s (%d LLC accesses) ==\n", bench, len(tr))

		type row struct {
			name string
			rate float64
		}
		var rows []row
		for _, name := range []string{"lru", "random", "srrip", "drrip", "kpc-r",
			"ship", "ship++", "hawkeye", "glider", "pdp", "eva", "rwp", "cbr",
			"igdr", "rlr", "rlr-unopt"} {
			st := cachesim.RunPolicy(cfg, policy.MustNew(name), tr)
			rows = append(rows, row{name, st.HitRate()})
		}
		oracle := policy.NewOracle(tr, cfg.LineSize)
		st := cachesim.RunPolicy(cfg, policy.NewBelady(oracle), tr)
		rows = append(rows, row{"belady (oracle)", st.HitRate()})

		sort.Slice(rows, func(i, j int) bool { return rows[i].rate > rows[j].rate })
		for _, r := range rows {
			fmt.Printf("  %-16s %6.2f%%\n", r.name, r.rate)
		}
		fmt.Println()
	}
}
