// rlinsights runs the paper's §III methodology end to end on one workload:
// capture an LLC trace, train the RL agent against the Belady reward, then
// mine the trained network for the insights that motivate RLR — the
// feature-importance heat map, the preuse/reuse correlation, and the
// victim-age / hits / recency statistics — and verify that the derived
// static policy (RLR) captures most of the agent's gain over LRU.
//
//	go run ./examples/rlinsights
package main

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cachesim"
	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/rl"
	"repro/internal/trace"
)

func main() {
	const bench = "429.mcf"
	// Table III geometry; trimmed trace + a compact agent keep the example
	// interactive (cmd/rltrain runs the full 175-neuron configuration).
	s := experiments.QuickScale()
	s.CacheDiv = 1
	s.TraceLen = 80_000
	cfg := s.LLCConfig()

	fmt.Printf("1. capturing LLC trace for %s (LRU hierarchy, §III-A)...\n", bench)
	tr, err := experiments.CaptureLLCTrace(bench, s)
	if err != nil {
		panic(err)
	}

	fmt.Printf("2. training RL agent on %d accesses (ε=0.1, experience replay)...\n", len(tr))
	agent, _, err := experiments.TrainedAgent(bench, s)
	if err != nil {
		panic(err)
	}

	lru := cachesim.RunPolicy(cfg, policy.MustNew("lru"), tr)
	rlST := rl.Evaluate(cfg, agent, tr)
	oracle := policy.NewOracle(tr, cfg.LineSize)
	bel := cachesim.RunPolicy(cfg, policy.NewBelady(oracle), tr)
	rlr := cachesim.RunPolicy(cfg, policy.MustNew("rlr"), tr)
	fmt.Printf("\n   hit rates: LRU=%.2f%%  RL=%.2f%%  RLR=%.2f%%  Belady=%.2f%%\n\n",
		lru.HitRate(), rlST.HitRate(), rlr.HitRate(), bel.HitRate())

	fmt.Println("3. feature importance from the trained network (Figure 3):")
	rows := analysis.HeatMap(agent)
	for i, r := range rows {
		marker := ""
		if i < 5 {
			marker = "  ← top-5"
		}
		fmt.Printf("   %-28s %.5f%s\n", r.Feature, r.Weight, marker)
	}

	fmt.Println("\n4. preuse vs reuse distance (Figure 4):")
	pr := analysis.PreuseReuseDiff(cfg, tr)
	fmt.Printf("   |preuse-reuse| < 10: %.1f%%   10-50: %.1f%%   > 50: %.1f%%  (%d samples)\n",
		100*pr.Below10, 100*pr.Mid10to50, 100*pr.Above50, pr.Samples)

	fmt.Println("\n5. agent victim statistics (Figures 5-7):")
	st := analysis.CollectVictimStats(cfg, agent, tr)
	fmt.Printf("   avg victim age by last access type: LD=%.1f RFO=%.1f PF=%.1f WB=%.1f\n",
		st.AvgAgeByType[trace.Load], st.AvgAgeByType[trace.RFO],
		st.AvgAgeByType[trace.Prefetch], st.AvgAgeByType[trace.Writeback])
	fmt.Printf("   victims by hits since insertion: 0=%.0f%% 1=%.0f%% >1=%.0f%%\n",
		100*st.HitsZero, 100*st.HitsOne, 100*st.HitsMore)
	fmt.Printf("   victim recency histogram (0=LRU..15=MRU): %v\n", compact(st.RecencyPct))

	fmt.Println("\nThese are the four RLR insights: preuse≈reuse (age priority + RD),")
	fmt.Println("prefetched lines die young (type priority), hit lines get rehit (hit")
	fmt.Println("priority), and ties should evict the youngest line (recency).")
}

func compact(xs []float64) []int {
	out := make([]int, len(xs))
	for i, v := range xs {
		out[i] = int(v + 0.5)
	}
	return out
}
